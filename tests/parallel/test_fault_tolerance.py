"""Fault-tolerance suite: fleets converge bit-identically under injected faults.

The contract under test (DESIGN.md §9): the resilient runtime recovers from
worker death, hangs, poisoned tasks, and torn appends, and the recovered
run's records are **bit-identical** to a clean run's — recovery changes
where tasks execute, never what they return, and ``/dev/shm`` is left empty
afterwards.
"""

import glob
import os

import pytest

from repro.errors import TaskExecutionError
from repro.io.jsonl_store import FleetFailure
from repro.parallel import (
    TaskFailure,
    faults,
    parallel_map,
    shutdown_shared_pools,
)
from repro.parallel.faults import InjectedFault, injected_env


def our_shm_segments():
    return glob.glob("/dev/shm/repro-shm-*")


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Pools down and fault channels clear on both sides of every test."""
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()
    yield
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()
    shutdown_shared_pools()
    assert our_shm_segments() == []


def record_task(task):
    """A deterministic toy experiment: the record is a pure function of it."""
    idx, seed = task
    from repro.rng import make_rng

    rng = make_rng(seed)
    return {"idx": idx, "value": int(rng.integers(0, 1_000_000))}


def flaky_task(task):
    idx, seed = task
    if idx == 5:
        raise ValueError(f"poisoned task {idx}")
    return record_task(task)


TASKS = [(i, 1000 + i) for i in range(24)]
CLEAN = [record_task(t) for t in TASKS]


class TestInjectedWorkerDeath:
    def test_kill_on_chunk_is_bit_identical(self, tmp_path):
        with injected_env("kill:chunk=1", tmp_path / "tok"):
            out = parallel_map(
                record_task, TASKS, workers=2, chunk_size=4,
                retries=2, timeout=60,
            )
        assert out == CLEAN

    def test_kill_on_task_is_bit_identical(self, tmp_path):
        with injected_env("kill:task=7", tmp_path / "tok"):
            out = parallel_map(
                record_task, TASKS, workers=2, chunk_size=4,
                retries=2, timeout=60,
            )
        assert out == CLEAN

    def test_repeated_kills_exhaust_into_quarantine(self, tmp_path):
        # A task that SIGKILLs its worker on every attempt ends up
        # quarantined via the owner-side degraded attempt (where the kill
        # downgrades to InjectedFault), never killing the fleet.
        with injected_env("kill:task=7,times=50", tmp_path / "tok"):
            out = parallel_map(
                record_task, TASKS, workers=2, chunk_size=4,
                retries=1, timeout=60, on_error="record",
            )
        assert isinstance(out[7], TaskFailure)
        assert out[7].index == 7
        assert [x for i, x in enumerate(out) if i != 7] == [
            x for i, x in enumerate(CLEAN) if i != 7
        ]


class TestInjectedHang:
    def test_hang_recovers_via_timeout(self, tmp_path):
        with injected_env("hang:chunk=2,seconds=120", tmp_path / "tok"):
            out = parallel_map(
                record_task, TASKS, workers=2, chunk_size=4,
                retries=2, timeout=3,
            )
        assert out == CLEAN


class TestInjectedRaise:
    def test_transient_raise_retried_to_identical_records(self, tmp_path):
        with injected_env("raise:task=5", tmp_path / "tok"):
            out = parallel_map(
                record_task, TASKS, workers=2, chunk_size=4, retries=2,
            )
        assert out == CLEAN

    def test_persistent_raise_quarantined_with_identity(self, tmp_path):
        with injected_env("raise:task=5,times=50", tmp_path / "tok"):
            out = parallel_map(
                record_task, TASKS, workers=2, chunk_size=4,
                retries=1, on_error="record",
            )
        assert isinstance(out[5], TaskFailure)
        assert out[5].index == 5
        assert "InjectedFault" in out[5].error

    def test_persistent_raise_raises_with_identity(self, tmp_path):
        with injected_env("raise:task=5,times=50", tmp_path / "tok"):
            with pytest.raises(TaskExecutionError) as err:
                parallel_map(
                    record_task, TASKS, workers=2, chunk_size=4, retries=1,
                )
        assert err.value.index == 5
        assert isinstance(err.value.__cause__, InjectedFault)

    def test_serial_path_same_contract(self, tmp_path):
        with injected_env("raise:task=5", tmp_path / "tok"):
            out = parallel_map(record_task, TASKS, workers=1, retries=2)
        assert out == CLEAN


class TestGenuinePoison:
    def test_quarantine_does_not_disturb_neighbours(self):
        out = parallel_map(
            flaky_task, TASKS, workers=2, chunk_size=4,
            retries=1, on_error="record",
        )
        assert isinstance(out[5], TaskFailure)
        assert out[5].attempts >= 2  # retried before quarantine
        assert [x for i, x in enumerate(out) if i != 5] == [
            x for i, x in enumerate(CLEAN) if i != 5
        ]

    def test_retries_do_not_perturb_rng_streams(self):
        # The poisoned run's successful records must be byte-equal to the
        # clean run's: retries must not consume any RNG state.
        poisoned = parallel_map(
            flaky_task, TASKS, workers=2, chunk_size=4,
            retries=3, on_error="record",
        )
        again = parallel_map(
            flaky_task, TASKS, workers=2, chunk_size=4,
            retries=1, on_error="record",
        )
        for i in range(len(TASKS)):
            if i != 5:
                assert poisoned[i] == again[i] == CLEAN[i]


class TestFleetsUnderFaults:
    """End-to-end: census fleets under injected faults vs. clean runs."""

    def _clean_stream(self, path):
        from repro.core.census import run_census

        run_census(
            [8], families=("tree",), replicates=4, verify=False,
            workers=2, jsonl_path=path,
        )
        return path.read_text()

    def test_census_with_killed_worker_bit_identical(self, tmp_path):
        from repro.core.census import run_census

        clean = self._clean_stream(tmp_path / "clean.jsonl")
        faulted = tmp_path / "faulted.jsonl"
        with injected_env("kill:chunk=0", tmp_path / "tok"):
            run_census(
                [8], families=("tree",), replicates=4, verify=False,
                workers=2, jsonl_path=faulted, retries=2, timeout=60,
            )
        assert faulted.read_text() == clean

    def test_census_quarantine_then_retry_failed_resume(self, tmp_path):
        from repro.core.census import run_census

        clean = self._clean_stream(tmp_path / "clean.jsonl")
        faulted = tmp_path / "faulted.jsonl"
        # Persistent fault: task 2 fails on every attempt -> quarantined.
        with injected_env("raise:task=2,times=50", tmp_path / "tok"):
            out = run_census(
                [8], families=("tree",), replicates=4, verify=False,
                workers=2, jsonl_path=faulted, retries=1,
            )
        assert isinstance(out[2], FleetFailure)
        assert out[2].coords["n"] == 8 and out[2].attempts >= 2
        assert "fleet_failure" in faulted.read_text()
        # Resume with --retry-failed semantics, faults disarmed: the
        # quarantined slot is re-run and the merged stream is bit-identical
        # to the uninterrupted run.
        fixed = run_census(
            [8], families=("tree",), replicates=4, verify=False,
            workers=2, jsonl_path=faulted, resume=True, retry_failed=True,
        )
        assert not any(isinstance(r, FleetFailure) for r in fixed)
        assert faulted.read_text() == clean

    def test_trajectory_census_with_killed_worker_bit_identical(
        self, tmp_path
    ):
        from repro.core.trajcensus import run_trajectory_census

        kwargs = dict(
            n_values=[8], families=("tree",), replicates=4, verify=False,
            workers=2,
        )
        clean = tmp_path / "clean.jsonl"
        run_trajectory_census(jsonl_path=clean, **kwargs)
        faulted = tmp_path / "faulted.jsonl"
        with injected_env("kill:chunk=1", tmp_path / "tok"):
            run_trajectory_census(
                jsonl_path=faulted, retries=2, timeout=60, **kwargs
            )
        assert faulted.read_text() == clean.read_text()

    def test_torn_append_then_resume_bit_identical(self, tmp_path):
        from repro.core.census import run_census

        clean = self._clean_stream(tmp_path / "clean.jsonl")
        faulted = tmp_path / "faulted.jsonl"
        # Serial fleet so the torn batch cuts a record in half mid-stream;
        # the injected tear raises in the owner, like a crash would stop it.
        with injected_env("torn-write:batch=2", tmp_path / "tok"):
            with pytest.raises(InjectedFault):
                run_census(
                    [8], families=("tree",), replicates=4, verify=False,
                    workers=1, jsonl_path=faulted,
                )
        # The stream's final line is torn; resume drops it and re-runs.
        run_census(
            [8], families=("tree",), replicates=4, verify=False,
            workers=1, jsonl_path=faulted, resume=True,
        )
        assert faulted.read_text() == clean

    def test_crash_resume_merges_to_uninterrupted_stream(self, tmp_path):
        """Kill a worker mid-fleet, then resume: merged JSONL bit-identical.

        The ISSUE-6 crash-resume satellite end-to-end: the first run dies
        mid-flight (fail-fast so the injected kill aborts the fleet), the
        resumed run (fault disarmed) picks up the streamed prefix and
        finishes; the merged stream equals the uninterrupted run's.
        """
        from repro.core.trajcensus import run_trajectory_census

        kwargs = dict(
            n_values=[8], families=("tree",), replicates=6, verify=False,
        )
        clean = tmp_path / "clean.jsonl"
        run_trajectory_census(jsonl_path=clean, workers=2, **kwargs)
        interrupted = tmp_path / "interrupted.jsonl"
        with injected_env("raise:task=3,times=50", tmp_path / "tok"):
            with pytest.raises(TaskExecutionError):
                # Fail-fast + a persistent fault: the failure survives the
                # degraded serial attempt too, aborting the fleet
                # mid-stream (a stand-in for an operator Ctrl-C / crash).
                run_trajectory_census(
                    jsonl_path=interrupted, workers=2, retries=0,
                    timeout=60, on_error="raise", **kwargs
                )
        streamed = interrupted.read_text()
        assert streamed  # header at minimum; typically a strict prefix
        assert clean.read_text().startswith(streamed.splitlines()[0])
        run_trajectory_census(
            jsonl_path=interrupted, workers=2, resume=True,
            retry_failed=True, **kwargs
        )
        assert interrupted.read_text() == clean.read_text()


class TestExecutorRecovery:
    def test_pool_heals_after_broken_executor(self, tmp_path):
        from repro.parallel import get_shared_pool

        with injected_env("kill:chunk=0,times=1", tmp_path / "tok"):
            pool = get_shared_pool(2)
            out = pool.map(record_task, TASKS, chunk_size=6, retries=1)
            assert out == CLEAN
            # The same cached pool object keeps serving after the rebuild
            # (the fault's one-firing budget is already spent).
            assert get_shared_pool(2) is pool
            assert pool.map(record_task, TASKS, chunk_size=6) == CLEAN
