"""Process-pool map tests."""

import pytest

from repro.errors import ConfigurationError, TaskExecutionError
from repro.parallel import (
    TaskFailure,
    chunk_evenly,
    default_workers,
    parallel_map,
)


def square(x: int) -> int:
    return x * x


def fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"cannot square {x}")
    return x * x


def seeded_record(task: tuple[int, int]) -> dict:
    # A toy deterministic "experiment": result depends only on the task.
    idx, seed = task
    from repro.rng import make_rng

    rng = make_rng(seed)
    return {"idx": idx, "value": int(rng.integers(0, 1_000_000))}


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(square, [], workers=1) == []

    def test_serial_matches_parallel(self):
        tasks = list(range(20))
        serial = parallel_map(square, tasks, workers=1)
        parallel = parallel_map(square, tasks, workers=2)
        assert serial == parallel == [x * x for x in tasks]

    def test_order_preserved(self):
        tasks = list(range(31, 0, -1))
        assert parallel_map(square, tasks, workers=2) == [x * x for x in tasks]

    def test_seeded_results_worker_independent(self):
        tasks = [(i, 1000 + i) for i in range(12)]
        one = parallel_map(seeded_record, tasks, workers=1)
        two = parallel_map(seeded_record, tasks, workers=2)
        assert one == two

    def test_lambda_rejected_for_multiprocess(self):
        with pytest.raises(ConfigurationError):
            parallel_map(lambda x: x, [1, 2, 3], workers=2)

    def test_lambda_fine_serially(self):
        assert parallel_map(lambda x: x + 1, [1, 2], workers=1) == [2, 3]

    def test_worker_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [1], workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestWorkerExceptionIdentity:
    """ISSUE 6 satellite: raised errors carry the failing task's identity."""

    @pytest.mark.parametrize("workers", [2])
    @pytest.mark.parametrize("backend", ["persistent", "fork"])
    def test_error_names_task_index_and_repr(self, workers, backend):
        with pytest.raises(TaskExecutionError) as err:
            parallel_map(
                fail_on_three, list(range(8)), workers=workers,
                chunk_size=2, backend=backend,
            )
        assert err.value.index == 3
        assert "3" in err.value.task_repr
        assert "cannot square 3" in str(err.value)
        assert isinstance(err.value.__cause__, ValueError)

    def test_serial_fault_tolerant_path_same_identity(self):
        with pytest.raises(TaskExecutionError) as err:
            parallel_map(fail_on_three, list(range(8)), workers=1, retries=1)
        assert err.value.index == 3
        assert err.value.attempts == 2

    def test_on_error_record_quarantines_slot(self):
        out = parallel_map(
            fail_on_three, list(range(8)), workers=1, on_error="record"
        )
        assert isinstance(out[3], TaskFailure)
        assert out[3].index == 3
        assert [x for i, x in enumerate(out) if i != 3] == [
            x * x for x in range(8) if x != 3
        ]


class TestFaultToleranceKnobs:
    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [1], workers=1, on_error="ignore")

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [1], workers=1, retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [1], workers=1, timeout=0)

    def test_fork_backend_rejects_fault_tolerance(self):
        # The fork path is the plain per-call oracle; recovery knobs only
        # exist on the persistent/serial paths.
        with pytest.raises(ConfigurationError, match="fork"):
            parallel_map(square, [1, 2], workers=2, backend="fork", retries=1)

    def test_retries_do_not_change_results(self):
        tasks = [(i, 1000 + i) for i in range(12)]
        plain = parallel_map(seeded_record, tasks, workers=2)
        retried = parallel_map(
            seeded_record, tasks, workers=2, retries=3, timeout=60
        )
        assert plain == retried


class TestChunkEvenly:
    def test_covers_all_items_in_order(self):
        items = list(range(17))
        chunks = chunk_evenly(items, 5)
        flat = [x for _, chunk in chunks for x in chunk]
        assert flat == items
        for start, chunk in chunks:
            assert items[start : start + len(chunk)] == chunk

    def test_near_equal_sizes(self):
        sizes = [len(c) for _, c in chunk_evenly(list(range(10)), 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        chunks = chunk_evenly([1, 2], 8)
        assert [c for _, c in chunks] == [[1], [2]]

    def test_empty_and_invalid(self):
        assert chunk_evenly([], 4) == []
        with pytest.raises(ConfigurationError):
            chunk_evenly([1], 0)
