"""The ambient task deadline (DESIGN.md §13): a mapped task body can read
the request budget it runs under via ``current_task_deadline()`` without
any plumbing through task tuples — how a fleet-level deadline reaches the
dynamics loop to trigger checkpoint-and-yield."""

import time

import pytest

from repro.errors import DeadlineExceeded
from repro.parallel import (
    current_task_deadline,
    parallel_map,
    shutdown_shared_pools,
)
from repro.parallel.pool import _deadline_scope


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    shutdown_shared_pools()


def report_deadline(task):
    return (task, current_task_deadline())


class TestScope:
    def test_no_ambient_deadline_outside_tasks(self):
        assert current_task_deadline() is None

    def test_scope_sets_and_restores(self):
        with _deadline_scope(123.5):
            assert current_task_deadline() == 123.5
        assert current_task_deadline() is None

    def test_scopes_nest(self):
        with _deadline_scope(100.0):
            with _deadline_scope(50.0):
                assert current_task_deadline() == 50.0
            assert current_task_deadline() == 100.0
        assert current_task_deadline() is None

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with _deadline_scope(100.0):
                raise RuntimeError("task died")
        assert current_task_deadline() is None

    def test_none_scope_is_transparent(self):
        with _deadline_scope(None):
            assert current_task_deadline() is None


class TestMappedTasks:
    def test_serial_tasks_see_the_map_deadline(self):
        deadline = time.monotonic() + 60.0
        results = parallel_map(
            report_deadline, [0, 1, 2], workers=1, deadline=deadline
        )
        assert results == [(0, deadline), (1, deadline), (2, deadline)]

    def test_serial_tasks_without_deadline_see_none(self):
        results = parallel_map(report_deadline, [0, 1], workers=1)
        assert results == [(0, None), (1, None)]

    def test_worker_tasks_see_the_map_deadline(self):
        # Monotonic instants are system-wide on the platforms the pool
        # supports, so forked workers can compare the owner's deadline.
        deadline = time.monotonic() + 60.0
        results = parallel_map(
            report_deadline, list(range(6)), workers=2, deadline=deadline
        )
        assert results == [(t, deadline) for t in range(6)]

    def test_ambient_deadline_does_not_leak_past_the_map(self):
        parallel_map(
            report_deadline, [0], workers=1,
            deadline=time.monotonic() + 60.0,
        )
        assert current_task_deadline() is None

    def test_spent_deadline_still_raises_typed(self):
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                report_deadline, [0, 1], workers=1,
                deadline=time.monotonic() - 1.0,
            )
        assert current_task_deadline() is None
