"""Shared-memory runtime tests: zero-copy views, determinism, no leaks."""

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    SharedArrayBundle,
    SharedArrayPool,
    get_shared_pool,
    parallel_map,
)
from repro.parallel.shared import _NAME_PREFIX, attach_spec


def _our_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{_NAME_PREFIX}-*")


def row_sum(task: int, arrays) -> float:
    return float(arrays["m"][task].sum())


def pid_tag(task: int) -> tuple[int, int]:
    return task, os.getpid()


class TestSharedArrayBundle:
    def test_views_match_and_are_readonly(self):
        arrs = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b": np.ones(5, dtype=np.int32),
        }
        with SharedArrayBundle(arrs) as bundle:
            views = bundle.arrays()
            assert set(views) == {"a", "b"}
            for key in arrs:
                assert np.array_equal(views[key], arrs[key])
                assert views[key].dtype == arrs[key].dtype
                with pytest.raises(ValueError):
                    views[key][0] = 0

    def test_attach_spec_roundtrip_in_process(self):
        arr = np.arange(20.0).reshape(4, 5)
        with SharedArrayBundle({"x": arr}) as bundle:
            attached = attach_spec(bundle.spec)
            assert np.array_equal(attached["x"], arr)

    def test_close_unlinks_and_is_idempotent(self):
        bundle = SharedArrayBundle({"x": np.zeros(8)})
        paths = [f"/dev/shm/{name}" for name in bundle.segment_names]
        assert all(os.path.exists(p) for p in paths)
        bundle.close()
        assert not any(os.path.exists(p) for p in paths)
        bundle.close()  # second close is a no-op
        with pytest.raises(ConfigurationError):
            bundle.arrays()

    def test_empty_bundle_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedArrayBundle({})

    def test_empty_array_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedArrayBundle({"x": np.empty(0)})

    def test_no_segments_left_behind(self):
        before = set(_our_segments())
        with SharedArrayBundle({"x": np.ones((64, 64))}):
            pass
        assert set(_our_segments()) == before


class TestTeardown:
    """DESIGN.md §5: no leaked /dev/shm segments, however the owner dies."""

    SCRIPT = textwrap.dedent(
        """
        import os, signal, sys
        sys.path.insert(0, {src!r})
        import numpy as np
        from repro.parallel import SharedArrayBundle
        b = SharedArrayBundle({{"x": np.ones((128, 128))}})
        print(b.segment_names[0], flush=True)
        {exit_stmt}
        """
    )

    def _run_and_check(self, exit_stmt: str) -> None:
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT.format(src=src, exit_stmt=exit_stmt)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        name = proc.stdout.split()[0]
        assert name.startswith(_NAME_PREFIX)
        assert not os.path.exists(f"/dev/shm/{name}"), (
            f"segment {name} leaked after: {exit_stmt}"
        )

    def test_interpreter_exit_without_close(self):
        # atexit backstop closes live bundles on normal interpreter exit.
        self._run_and_check("pass")

    def test_sigkill_cleanup_via_resource_tracker(self):
        # SIGKILL skips every Python-level hook; the owner's resource
        # tracker (a separate process) must reap the segment.
        self._run_and_check("os.kill(os.getpid(), signal.SIGKILL)")


class TestSharedArrayPool:
    def test_map_preserves_order_and_reuses_workers(self):
        pool = get_shared_pool(2)
        tasks = list(range(17))
        first = pool.map(pid_tag, tasks)
        spawned = set(pool._executor._processes)
        second = pool.map(pid_tag, tasks)
        assert [t for t, _ in first] == tasks
        assert [t for t, _ in second] == tasks
        # Persistent pool: the second call runs on the same executor and
        # spawns no new worker processes.  (Which of the spawned workers
        # executes a given chunk is scheduler timing — an idle worker may
        # first pick up work in call 2 — so assert the process table, not
        # the executed-PID sets.)
        assert set(pool._executor._processes) == spawned
        assert {p for _, p in second} <= spawned

    def test_map_with_shared_payload(self):
        m = np.arange(36.0).reshape(6, 6)
        pool = get_shared_pool(2)
        with SharedArrayBundle({"m": m}) as bundle:
            out = pool.map(row_sum, list(range(6)), shared=bundle)
        assert out == [float(m[i].sum()) for i in range(6)]

    def test_get_shared_pool_caches_by_worker_count(self):
        assert get_shared_pool(2) is get_shared_pool(2)
        assert get_shared_pool(2) is not get_shared_pool(3)

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            SharedArrayPool(0)
        with pytest.raises(ConfigurationError):
            get_shared_pool(0)


class TestParallelMapSharedChannel:
    @pytest.mark.parametrize("backend", ["auto", "persistent", "fork"])
    def test_backends_agree_with_serial(self, backend):
        m = np.arange(48.0).reshape(8, 6)
        tasks = list(range(8))
        serial = parallel_map(row_sum, tasks, workers=1, shared={"m": m})
        multi = parallel_map(
            row_sum, tasks, workers=2, shared={"m": m}, backend=backend
        )
        assert serial == multi == [float(m[i].sum()) for i in range(8)]

    def test_worker_count_invariance(self):
        m = np.arange(100.0).reshape(10, 10)
        tasks = list(range(10))
        results = [
            parallel_map(row_sum, tasks, workers=w, shared={"m": m})
            for w in (1, 2, 4)
        ]
        assert results[0] == results[1] == results[2]

    def test_mapping_payload_is_cleaned_up(self):
        before = set(_our_segments())
        m = np.ones((32, 32))
        parallel_map(row_sum, list(range(4)), workers=2, shared={"m": m})
        assert set(_our_segments()) == before

    def test_bundle_payload_stays_open(self):
        m = np.ones((8, 8))
        with SharedArrayBundle({"m": m}) as bundle:
            parallel_map(row_sum, [0, 1], workers=2, shared=bundle)
            # caller-owned bundle survives the call
            assert np.array_equal(bundle.arrays()["m"], m)

    def test_bad_shared_type_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(row_sum, [0], workers=2, shared=[1, 2, 3])

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(row_sum, [0], workers=2, backend="quantum")
