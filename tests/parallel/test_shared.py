"""Shared-memory runtime tests: zero-copy views, determinism, no leaks."""

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    SharedArrayBundle,
    SharedArrayPool,
    get_shared_pool,
    parallel_map,
)
from repro.parallel.shared import _NAME_PREFIX, attach_spec


def _our_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{_NAME_PREFIX}-*")


def row_sum(task: int, arrays) -> float:
    return float(arrays["m"][task].sum())


def pid_tag(task: int) -> tuple[int, int]:
    return task, os.getpid()


class TestSharedArrayBundle:
    def test_views_match_and_are_readonly(self):
        arrs = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b": np.ones(5, dtype=np.int32),
        }
        with SharedArrayBundle(arrs) as bundle:
            views = bundle.arrays()
            assert set(views) == {"a", "b"}
            for key in arrs:
                assert np.array_equal(views[key], arrs[key])
                assert views[key].dtype == arrs[key].dtype
                with pytest.raises(ValueError):
                    views[key][0] = 0

    def test_attach_spec_roundtrip_in_process(self):
        arr = np.arange(20.0).reshape(4, 5)
        with SharedArrayBundle({"x": arr}) as bundle:
            attached = attach_spec(bundle.spec)
            assert np.array_equal(attached["x"], arr)

    def test_close_unlinks_and_is_idempotent(self):
        bundle = SharedArrayBundle({"x": np.zeros(8)})
        paths = [f"/dev/shm/{name}" for name in bundle.segment_names]
        assert all(os.path.exists(p) for p in paths)
        bundle.close()
        assert not any(os.path.exists(p) for p in paths)
        bundle.close()  # second close is a no-op
        with pytest.raises(ConfigurationError):
            bundle.arrays()

    def test_empty_bundle_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedArrayBundle({})

    def test_empty_array_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedArrayBundle({"x": np.empty(0)})

    def test_no_segments_left_behind(self):
        before = set(_our_segments())
        with SharedArrayBundle({"x": np.ones((64, 64))}):
            pass
        assert set(_our_segments()) == before


class TestTeardown:
    """DESIGN.md §5: no leaked /dev/shm segments, however the owner dies."""

    SCRIPT = textwrap.dedent(
        """
        import os, signal, sys
        sys.path.insert(0, {src!r})
        import numpy as np
        from repro.parallel import SharedArrayBundle
        b = SharedArrayBundle({{"x": np.ones((128, 128))}})
        print(b.segment_names[0], flush=True)
        {exit_stmt}
        """
    )

    def _run_and_check(self, exit_stmt: str) -> None:
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT.format(src=src, exit_stmt=exit_stmt)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        name = proc.stdout.split()[0]
        assert name.startswith(_NAME_PREFIX)
        assert not os.path.exists(f"/dev/shm/{name}"), (
            f"segment {name} leaked after: {exit_stmt}"
        )

    def test_interpreter_exit_without_close(self):
        # atexit backstop closes live bundles on normal interpreter exit.
        self._run_and_check("pass")

    def test_sigkill_cleanup_via_resource_tracker(self):
        # SIGKILL skips every Python-level hook; the owner's resource
        # tracker (a separate process) must reap the segment.
        self._run_and_check("os.kill(os.getpid(), signal.SIGKILL)")


class TestSharedArrayPool:
    def test_map_preserves_order_and_reuses_workers(self):
        pool = get_shared_pool(2)
        tasks = list(range(17))
        first = pool.map(pid_tag, tasks)
        spawned = set(pool._executor._processes)
        second = pool.map(pid_tag, tasks)
        assert [t for t, _ in first] == tasks
        assert [t for t, _ in second] == tasks
        # Persistent pool: the second call runs on the same executor and
        # spawns no new worker processes.  (Which of the spawned workers
        # executes a given chunk is scheduler timing — an idle worker may
        # first pick up work in call 2 — so assert the process table, not
        # the executed-PID sets.)
        assert set(pool._executor._processes) == spawned
        assert {p for _, p in second} <= spawned

    def test_map_with_shared_payload(self):
        m = np.arange(36.0).reshape(6, 6)
        pool = get_shared_pool(2)
        with SharedArrayBundle({"m": m}) as bundle:
            out = pool.map(row_sum, list(range(6)), shared=bundle)
        assert out == [float(m[i].sum()) for i in range(6)]

    def test_get_shared_pool_caches_by_worker_count(self):
        assert get_shared_pool(2) is get_shared_pool(2)
        assert get_shared_pool(2) is not get_shared_pool(3)

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            SharedArrayPool(0)
        with pytest.raises(ConfigurationError):
            get_shared_pool(0)


class TestExecutorHealing:
    """ISSUE 6 satellite: a cached pool must never serve a dead executor."""

    def test_broken_executor_detected_and_rebuilt(self):
        pool = get_shared_pool(2)
        assert pool.map(pid_tag, list(range(4)))  # spin the workers up
        # Simulate an external OOM-kill of every worker, then poke the
        # executor so it marks itself broken.
        for proc in pool._executor._processes.values():
            proc.kill()
        try:
            pool._executor.submit(os.getpid).result(timeout=30)
        except Exception:
            pass
        assert getattr(pool._executor, "_broken", False)
        # The next map on the same cached pool heals and serves.
        out = pool.map(pid_tag, list(range(6)))
        assert [t for t, _ in out] == list(range(6))

    def test_ensure_executor_discards_broken_corpse(self):
        pool = get_shared_pool(3)
        ex = pool._ensure_executor()
        ex.submit(os.getpid).result(timeout=30)  # spawn the workers
        for proc in ex._processes.values():
            proc.kill()
        try:
            ex.submit(os.getpid).result(timeout=30)
        except Exception:
            pass
        rebuilt = pool._ensure_executor()
        assert rebuilt is not ex
        assert not getattr(rebuilt, "_broken", False)


class TestOrphanReaper:
    """DESIGN.md §9: startup reaping of segments whose owner died."""

    ORPHAN_SCRIPT = textwrap.dedent(
        """
        import sys
        sys.path.insert(0, {src!r})
        import numpy as np
        from multiprocessing import resource_tracker
        from repro.parallel import SharedArrayBundle
        b = SharedArrayBundle({{"x": np.ones((16, 16))}})
        name = b.segment_names[0]
        # Simulate owner+tracker dying together: deregister from the
        # tracker and drop the handle without unlinking.
        resource_tracker.unregister("/" + name, "shared_memory")
        seg = b._segments.pop("x")
        b._views = {{}}
        seg.close()
        print(name, flush=True)
        """
    )

    def _make_orphan(self) -> str:
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        proc = subprocess.run(
            [sys.executable, "-c", self.ORPHAN_SCRIPT.format(src=src)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.split()[0]
        assert os.path.exists(f"/dev/shm/{name}"), "orphan setup failed"
        return name

    def test_reaper_unlinks_dead_owner_segment(self):
        from repro.parallel import reap_orphan_segments

        name = self._make_orphan()
        reaped = reap_orphan_segments()
        assert name in reaped
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_reaper_spares_live_owner_segment(self):
        from repro.parallel import reap_orphan_segments

        with SharedArrayBundle({"x": np.ones(4)}) as bundle:
            name = bundle.segment_names[0]
            assert name not in reap_orphan_segments()
            assert os.path.exists(f"/dev/shm/{name}")

    def test_registry_guards_against_pid_reuse(self, monkeypatch):
        # A live pid whose start time differs from the registry stamp is a
        # recycled pid: the segment's real owner is dead, so it is reaped.
        import repro.parallel.shared as shared_mod

        name = self._make_orphan()
        monkeypatch.setattr(shared_mod, "_pid_alive", lambda p: True)
        assert name in shared_mod.reap_orphan_segments()

    def test_bundle_creation_triggers_reap_once(self, monkeypatch):
        import repro.parallel.shared as shared_mod

        name = self._make_orphan()
        monkeypatch.setattr(shared_mod, "_reaped_once", False)
        with SharedArrayBundle({"x": np.ones(4)}):
            pass
        assert not os.path.exists(f"/dev/shm/{name}")


class TestBundleRevalidate:
    def test_revalidate_returns_self_when_segments_live(self):
        with SharedArrayBundle({"x": np.arange(6.0)}) as bundle:
            assert bundle.revalidate() is bundle

    def test_revalidate_republishes_after_external_unlink(self):
        arr = np.arange(12.0).reshape(3, 4)
        with SharedArrayBundle({"x": arr}) as bundle:
            os.unlink(f"/dev/shm/{bundle.segment_names[0]}")
            fresh = bundle.revalidate()
            try:
                assert fresh is not bundle
                assert np.array_equal(fresh.arrays()["x"], arr)
                assert os.path.exists(f"/dev/shm/{fresh.segment_names[0]}")
            finally:
                fresh.close()

    def test_revalidate_refuses_closed_bundle(self):
        bundle = SharedArrayBundle({"x": np.ones(4)})
        bundle.close()
        with pytest.raises(ConfigurationError):
            bundle.revalidate()


class TestParallelMapSharedChannel:
    @pytest.mark.parametrize("backend", ["auto", "persistent", "fork"])
    def test_backends_agree_with_serial(self, backend):
        m = np.arange(48.0).reshape(8, 6)
        tasks = list(range(8))
        serial = parallel_map(row_sum, tasks, workers=1, shared={"m": m})
        multi = parallel_map(
            row_sum, tasks, workers=2, shared={"m": m}, backend=backend
        )
        assert serial == multi == [float(m[i].sum()) for i in range(8)]

    def test_worker_count_invariance(self):
        m = np.arange(100.0).reshape(10, 10)
        tasks = list(range(10))
        results = [
            parallel_map(row_sum, tasks, workers=w, shared={"m": m})
            for w in (1, 2, 4)
        ]
        assert results[0] == results[1] == results[2]

    def test_mapping_payload_is_cleaned_up(self):
        before = set(_our_segments())
        m = np.ones((32, 32))
        parallel_map(row_sum, list(range(4)), workers=2, shared={"m": m})
        assert set(_our_segments()) == before

    def test_bundle_payload_stays_open(self):
        m = np.ones((8, 8))
        with SharedArrayBundle({"m": m}) as bundle:
            parallel_map(row_sum, [0, 1], workers=2, shared=bundle)
            # caller-owned bundle survives the call
            assert np.array_equal(bundle.arrays()["m"], m)

    def test_bad_shared_type_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(row_sum, [0], workers=2, shared=[1, 2, 3])

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(row_sum, [0], workers=2, backend="quantum")
