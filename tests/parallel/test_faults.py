"""Unit tests of the deterministic fault-injection harness."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.parallel import faults
from repro.parallel.faults import (
    FaultSpec,
    InjectedFault,
    injected_env,
    maybe_fault,
    parse_faults,
)


@pytest.fixture(autouse=True)
def _clean_channels(monkeypatch):
    """Every test starts with no armed faults and leaves none behind."""
    for key in (faults.ENV_SPEC, faults.ENV_DIR, faults.ENV_SAFE_PID):
        monkeypatch.delenv(key, raising=False)
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()
    yield
    faults.clear_hooks()
    faults._LOCAL_TOKENS.clear()


class TestParse:
    def test_single_kind_defaults(self):
        (spec,) = parse_faults("raise")
        assert spec == FaultSpec(kind="raise")

    def test_full_grammar(self):
        specs = parse_faults(
            "kill:chunk=1;raise:task=5,times=2;hang:chunk=0,seconds=0.5"
        )
        assert [s.kind for s in specs] == ["kill", "raise", "hang"]
        assert specs[0].chunk == 1
        assert specs[1] == FaultSpec(kind="raise", task=5, times=2)
        assert specs[2].seconds == 0.5

    def test_torn_write_batch_filter(self):
        (spec,) = parse_faults("torn-write:batch=3")
        assert spec.kind == "torn-write" and spec.batch == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            parse_faults("explode")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault option"):
            parse_faults("raise:frequency=2")

    def test_malformed_option_rejected(self):
        with pytest.raises(ConfigurationError, match="not key=value"):
            parse_faults("raise:task")

    def test_zero_times_rejected(self):
        with pytest.raises(ConfigurationError, match="times"):
            parse_faults("raise:times=0")

    def test_empty_parts_skipped(self):
        assert parse_faults(";raise;;") == (FaultSpec(kind="raise"),)

    def test_path_filter(self):
        (spec,) = parse_faults("torn-write:path=result_cache,times=2")
        assert spec.path == "result_cache" and spec.times == 2

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError, match="empty path"):
            parse_faults("torn-write:path=")


class TestMatching:
    def test_filterless_spec_matches_any_site(self):
        spec = FaultSpec(kind="raise")
        assert spec.matches({"chunk": 0})
        assert spec.matches({"task": 7})

    def test_filtered_spec_needs_exact_site(self):
        spec = FaultSpec(kind="raise", task=5)
        assert spec.matches({"task": 5})
        assert not spec.matches({"task": 6})
        assert not spec.matches({"chunk": 5})

    def test_path_filter_is_substring_match(self):
        spec = FaultSpec(kind="torn-write", path="cache/ab")
        assert spec.matches({"path": "/tmp/x/cache/ab12.json"})
        assert not spec.matches({"path": "/tmp/x/stream.jsonl"})
        assert not spec.matches({"batch": 0})  # pathless site never matches

    def test_path_filter_composes_with_site_keys(self):
        spec = FaultSpec(kind="torn-write", batch=1, path="fleet")
        assert spec.matches({"batch": 1, "path": "results/fleet.jsonl"})
        assert not spec.matches({"batch": 0, "path": "results/fleet.jsonl"})
        assert not spec.matches({"batch": 1, "path": "results/other.jsonl"})


class TestFiring:
    def test_raise_fires_once_by_default(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "raise:task=3")
        with pytest.raises(InjectedFault):
            maybe_fault(task=3)
        maybe_fault(task=3)  # budget spent: no second firing

    def test_times_budget(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "raise:task=3,times=2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                maybe_fault(task=3)
        maybe_fault(task=3)

    def test_token_dir_budget_shared_across_specs(self, monkeypatch, tmp_path):
        monkeypatch.setenv(faults.ENV_SPEC, "raise:task=1")
        monkeypatch.setenv(faults.ENV_DIR, str(tmp_path))
        with pytest.raises(InjectedFault):
            maybe_fault(task=1)
        # The token file persists, so even a "fresh process" (fresh local
        # counters) cannot replay the firing.
        faults._LOCAL_TOKENS.clear()
        maybe_fault(task=1)
        assert len(list(tmp_path.iterdir())) == 1

    def test_owner_safe_downgrades_kill_to_raise(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "kill:task=0")
        monkeypatch.setenv(faults.ENV_SAFE_PID, str(os.getpid()))
        with pytest.raises(InjectedFault, match="injected kill"):
            maybe_fault(task=0)

    def test_owner_safe_downgrades_hang(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "hang:task=0,seconds=3600")
        monkeypatch.setenv(faults.ENV_SAFE_PID, str(os.getpid()))
        with pytest.raises(InjectedFault, match="injected hang"):
            maybe_fault(task=0)  # would sleep an hour if not downgraded

    def test_unarmed_is_noop(self):
        maybe_fault(task=0, chunk=0)

    def test_take_consumes_matching_kind_only(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "torn-write:batch=2")
        assert faults.take("kill", batch=2) is None
        spec = faults.take("torn-write", batch=2)
        assert spec is not None and spec.batch == 2
        assert faults.take("torn-write", batch=2) is None


class TestHooks:
    def test_hook_sees_sites_and_can_inject(self):
        seen = []

        def hook(site):
            seen.append(dict(site))
            if site.get("task") == 2:
                raise InjectedFault("hook says no")

        faults.install_hook(hook)
        maybe_fault(task=1)
        with pytest.raises(InjectedFault):
            maybe_fault(task=2)
        faults.remove_hook(hook)
        maybe_fault(task=2)
        assert {"task": 1} in seen and {"task": 2} in seen

    def test_faults_armed_reflects_channels(self, monkeypatch):
        assert not faults.faults_armed()
        faults.install_hook(lambda site: None)
        assert faults.faults_armed()
        faults.clear_hooks()
        monkeypatch.setenv(faults.ENV_SPEC, "raise")
        assert faults.faults_armed()


class TestInjectedEnv:
    def test_arms_and_restores(self, tmp_path):
        assert faults.ENV_SPEC not in os.environ
        with injected_env("raise:task=9", tmp_path / "tok"):
            assert os.environ[faults.ENV_SPEC] == "raise:task=9"
            assert os.environ[faults.ENV_DIR] == str(tmp_path / "tok")
            assert os.environ[faults.ENV_SAFE_PID] == str(os.getpid())
            assert (tmp_path / "tok").is_dir()
        assert faults.ENV_SPEC not in os.environ
        assert faults.ENV_DIR not in os.environ

    def test_validates_spec_before_arming(self, tmp_path):
        with pytest.raises(ConfigurationError):
            with injected_env("explode", tmp_path / "tok"):
                pass
        assert faults.ENV_SPEC not in os.environ
