"""Theorem-level check tests."""

import pytest
from hypothesis import given, settings

from repro.constructions import double_star, rotated_torus
from repro.graphs import (
    CSRGraph,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.theory import (
    is_double_star,
    is_star,
    is_tree,
    theorem1_check,
    theorem1_witness,
    theorem4_check,
    theorem12_check,
    theorem15_check,
)

from ..conftest import trees


class TestPredicates:
    def test_is_tree(self):
        assert is_tree(path_graph(5))
        assert is_tree(star_graph(7))
        assert not is_tree(cycle_graph(5))
        assert not is_tree(CSRGraph(4, [(0, 1), (2, 3), (1, 2), (0, 3)]))

    def test_is_star(self):
        assert is_star(star_graph(9))
        assert is_star(star_graph(5, center=3))
        assert is_star(CSRGraph(2, [(0, 1)]))
        assert not is_star(path_graph(4))

    def test_is_double_star(self):
        assert is_double_star(double_star(2, 2))
        assert not is_double_star(star_graph(6))


class TestTheorem1:
    def test_witness_on_path(self):
        w = theorem1_witness(path_graph(4))
        assert w is not None
        assert w.path == (0, 1, 2, 3)
        assert w.sizes == (1, 1, 1, 1)
        # s_b + s_w <= s_a fails (2 > 1): vertex v's swap improves.
        assert not w.consistent_with_equilibrium

    def test_no_witness_on_star(self):
        assert theorem1_witness(star_graph(6)) is None

    def test_witness_subtree_sizes_sum_to_n(self):
        g = random_tree(15, seed=8)
        w = theorem1_witness(g)
        if w is not None:
            assert sum(w.sizes) <= g.n  # path interior may carry side trees
            assert all(s >= 1 for s in w.sizes)

    @given(trees(max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_check_on_random_trees(self, t):
        assert theorem1_check(t)

    def test_non_tree_rejected(self):
        with pytest.raises(ValueError):
            theorem1_check(cycle_graph(5))

    @given(trees(min_n=4, max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_diameter3_trees_break_an_inequality(self, t):
        w = theorem1_witness(t)
        if w is not None:
            # The proof's contradiction: both inequalities cannot hold.
            assert not w.consistent_with_equilibrium


class TestTheorem4:
    @given(trees(max_n=10))
    @settings(max_examples=40, deadline=None)
    def test_on_random_trees(self, t):
        assert theorem4_check(t)

    def test_non_tree_rejected(self):
        with pytest.raises(ValueError):
            theorem4_check(cycle_graph(4))


class TestTheorem12:
    def test_torus_passes(self):
        assert theorem12_check(rotated_torus(3), 3)

    def test_wrong_diameter_fails(self):
        assert not theorem12_check(rotated_torus(3), 4)

    def test_non_equilibrium_fails(self):
        assert not theorem12_check(path_graph(4), 3)


class TestTheorem15:
    def test_vacuous_above_quarter(self):
        assert theorem15_check(100, 0.3, 10**6)

    def test_binding_below_quarter(self):
        assert theorem15_check(1024, 0.1, 5)
        assert not theorem15_check(1024, 0.1, 10**6)

    def test_perfect_uniformity_floor(self):
        assert theorem15_check(64, 0.0, 3)
