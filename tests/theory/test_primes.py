"""Prime tooling tests (Theorem 13 power selection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    interval_avoidance_bound,
    is_prime,
    multiple_free_modulus,
    primes_up_to,
)


class TestSieve:
    def test_small_primes(self):
        assert primes_up_to(30).tolist() == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_empty(self):
        assert primes_up_to(1).size == 0

    @given(st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_sieve_matches_trial_division(self, n):
        sieve_says = n in set(primes_up_to(max(n, 2)).tolist())
        assert sieve_says == is_prime(n)


class TestMultipleFreeModulus:
    def test_known_case(self):
        # Every 2 <= x <= 20 has a multiple in [10, 20]; 21 does not.
        assert multiple_free_modulus(10, 20) == 21

    def test_narrow_interval(self):
        # [7, 7]: x = 2 has multiples 6, 8 — not 7; smallest is 2.
        assert multiple_free_modulus(7, 7) == 2

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            multiple_free_modulus(0, 5)
        with pytest.raises(ValueError):
            multiple_free_modulus(5, 3)

    def test_limit_respected(self):
        with pytest.raises(ValueError):
            multiple_free_modulus(10, 20, limit=5)

    @given(st.integers(1, 300), st.integers(0, 40))
    @settings(max_examples=80, deadline=None)
    def test_result_is_multiple_free_and_minimal(self, lo, width):
        hi = lo + width
        x = multiple_free_modulus(lo, hi)
        multiples = set(range(x, hi + 1, x))
        assert not (multiples & set(range(lo, hi + 1)))
        for smaller in range(2, x):
            first = ((lo + smaller - 1) // smaller) * smaller
            assert first <= hi  # every smaller modulus hits the interval


class TestAvoidanceBound:
    def test_theorem13_guard_suffices(self):
        # For an interval centred anywhere with width 2 * ceil(2 p lg n),
        # some modulus <= 4 lg^2 n must avoid it (p = 0.5 as the pipeline
        # uses). Spot-check across n and centres.
        import math

        for n in (64, 256, 1024):
            lg = math.log2(n)
            half = int(math.ceil(2 * 0.5 * lg))
            bound = interval_avoidance_bound(n)
            for center in (int(lg), n // 4, n // 2):
                lo = max(1, center - half)
                hi = center + half
                x = multiple_free_modulus(lo, hi, limit=max(bound, hi + 1))
                assert x <= max(bound, hi + 1)

    def test_floor(self):
        assert interval_avoidance_bound(1) == 3
