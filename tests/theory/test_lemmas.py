"""Executable lemma tests: the paper's inequalities on concrete graphs."""

import math

import pytest

from repro.constructions import (
    double_star,
    figure3_graph,
    polarity_graph,
    repaired_diameter3_witness,
    rotated_torus,
)
from repro.graphs import (
    CSRGraph,
    cycle_graph,
    eccentricities,
    path_graph,
    star_graph,
)
from repro.theory import (
    corollary11_holds,
    lemma10_holds,
    lemma2_holds,
    lemma3_holds,
    lemma6_holds,
    lemma6_holds_at,
    lemma7_holds_at,
    lemma8_holds,
)


class TestLemma2:
    def test_max_equilibria_satisfy_it(self):
        # Torus: all eccs equal; double star: eccs {2, 3}; star: {1, 2}.
        assert lemma2_holds(rotated_torus(3))
        assert lemma2_holds(double_star(2, 2))
        assert lemma2_holds(star_graph(6))

    def test_non_equilibria_can_violate(self):
        # The path P6 has eccs 3..5: spread 2 — and indeed is not a max
        # equilibrium (the lemma's contrapositive).
        assert not lemma2_holds(path_graph(6))

    def test_disconnected_fails(self):
        assert not lemma2_holds(CSRGraph(3, [(0, 1)]))


class TestLemma3:
    def test_max_equilibria_satisfy_it(self):
        assert lemma3_holds(double_star(3, 3))
        assert lemma3_holds(star_graph(7))
        assert lemma3_holds(rotated_torus(3))  # vacuous: no cut vertices

    def test_violating_graph(self):
        # Two long paths sharing a middle vertex: the cut vertex has two
        # deep components — consistent with it not being a max equilibrium.
        g = path_graph(7)  # vertex 3 cuts into two depth-3 components
        assert not lemma3_holds(g)


class TestLemma6:
    def test_figure3_c_vertices(self):
        g = figure3_graph()
        ecc = eccentricities(g)
        for v in range(g.n):
            if int(ecc[v]) == 2:
                assert lemma6_holds_at(g, v)

    def test_all_diameter2_graphs(self):
        for g in (star_graph(7), polarity_graph(3), cycle_graph(5)):
            assert lemma6_holds(g)

    def test_requires_ecc_2(self):
        with pytest.raises(ValueError):
            lemma6_holds_at(path_graph(6), 0)  # ecc 5, not 2

    def test_requires_connected(self):
        with pytest.raises(ValueError):
            lemma6_holds_at(CSRGraph(4, [(0, 1), (2, 3)]), 0)


class TestLemma7:
    def test_on_figure3_ecc3_vertices(self):
        g = figure3_graph()
        ecc = eccentricities(g)
        for v in range(g.n):
            if int(ecc[v]) != 3:
                continue
            for w in range(g.n):
                if w != v and not g.has_edge(v, w):
                    assert lemma7_holds_at(g, v, w), (v, w)

    def test_on_double_star(self):
        g = double_star(2, 2)
        # Leaf 2 has ecc 3; adding an edge to the far root or leaves.
        for w in (1, 4, 5):
            assert lemma7_holds_at(g, 2, w)

    def test_requires_ecc_3(self):
        with pytest.raises(ValueError):
            lemma7_holds_at(star_graph(5), 1, 2)


class TestLemma8:
    def test_on_figure3(self):
        assert lemma8_holds(figure3_graph())

    def test_on_girth4_graphs(self):
        from repro.graphs import complete_bipartite_graph, grid_graph

        assert lemma8_holds(complete_bipartite_graph(3, 3))
        assert lemma8_holds(grid_graph(3, 3))
        assert lemma8_holds(cycle_graph(6))

    def test_rejects_triangles(self):
        from repro.graphs import complete_graph

        with pytest.raises(ValueError):
            lemma8_holds(complete_graph(4))


class TestLemma10:
    def test_small_diameter_branch(self):
        out = lemma10_holds(star_graph(16), 0)
        assert out is not None and out.small_diameter

    def test_removable_edge_branch(self):
        # A long path (diameter 63 > 2 lg 64) with one cheap chord near the
        # anchor: removing the chord re-routes through the path at +1 per
        # endpoint, well under the 2n(1 + lg n) allowance.
        g = path_graph(64).with_edges(add=[(0, 2)])
        out = lemma10_holds(g, 0)
        assert out is not None
        assert not out.small_diameter
        assert out.edge is not None
        from repro.analysis import lemma10_removal_bound

        assert out.removal_cost <= lemma10_removal_bound(64)

    def test_no_branch_on_long_cycles(self):
        # C64 is not a sum equilibrium, and indeed neither branch of
        # Lemma 10's conclusion holds for it: removing any edge re-routes
        # half the cycle the long way (cost > 2n(1 + lg n)) and the
        # diameter exceeds 2 lg n. The lemma's hypothesis matters.
        assert lemma10_holds(cycle_graph(64), 0) is None

    def test_equilibria_always_satisfy_some_branch(self):
        for g in (
            star_graph(12),
            polarity_graph(3),
            repaired_diameter3_witness(),
            rotated_torus(4),
        ):
            assert lemma10_holds(g, 0) is not None


class TestCorollary11:
    def test_on_sum_equilibria(self):
        # The corollary's hypothesis is sum equilibrium.
        for g in (
            star_graph(16),
            polarity_graph(3),
            repaired_diameter3_witness(),
        ):
            assert corollary11_holds(g)

    def test_on_anything_small(self):
        # On small graphs the 5 n lg n allowance dwarfs any possible gain,
        # so even non-equilibria pass — the test documents that the check
        # is about the *bound*, not equilibrium detection.
        assert corollary11_holds(path_graph(12))
