"""Projective plane / polarity graph tests."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.constructions import (
    absolute_points,
    incidence_graph,
    is_prime,
    polarity_graph,
    projective_plane_points,
)
from repro.core import is_sum_equilibrium
from repro.graphs import diameter, girth, is_bipartite, is_connected


class TestPoints:
    @pytest.mark.parametrize("q", [2, 3, 5, 7])
    def test_point_count(self, q):
        pts = projective_plane_points(q)
        assert pts.shape == (q * q + q + 1, 3)

    def test_points_distinct(self):
        pts = projective_plane_points(5)
        assert len({tuple(p) for p in pts}) == pts.shape[0]

    def test_normalization(self):
        # First nonzero coordinate of every representative equals 1.
        for p in projective_plane_points(3):
            nz = [x for x in p if x != 0]
            assert nz[0] == 1

    def test_prime_required(self):
        with pytest.raises(GraphError):
            projective_plane_points(4)  # 2^2: prime power, unsupported
        with pytest.raises(GraphError):
            projective_plane_points(6)

    def test_is_prime(self):
        assert [q for q in range(14) if is_prime(q)] == [2, 3, 5, 7, 11, 13]


class TestIncidenceGraph:
    @pytest.mark.parametrize("q", [2, 3])
    def test_levi_graph_properties(self, q):
        g = incidence_graph(q)
        N = q * q + q + 1
        assert g.n == 2 * N
        assert set(g.degrees().tolist()) == {q + 1}
        assert is_bipartite(g)
        assert girth(g) == 6
        assert diameter(g) == 3

    def test_heawood_graph(self):
        # PG(2,2)'s Levi graph is the Heawood graph: 14 vertices, 21 edges.
        g = incidence_graph(2)
        assert (g.n, g.m) == (14, 21)


class TestPolarityGraph:
    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_basic_shape(self, q):
        g = polarity_graph(q)
        N = q * q + q + 1
        assert g.n == N
        assert is_connected(g)
        assert diameter(g) == 2

    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_degrees_and_absolute_points(self, q):
        g = polarity_graph(q)
        absolutes = absolute_points(q)
        assert absolutes.size == q + 1
        degs = g.degrees()
        for v in range(g.n):
            expected = q if v in absolutes else q + 1
            assert degs[v] == expected

    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_sum_equilibrium(self, q):
        # The diameter-2 cyclic equilibrium family (Albers et al. lineage).
        assert is_sum_equilibrium(polarity_graph(q))

    def test_edge_count_formula(self):
        # m = (N(q+1) - (q+1)) / 2: every point has q+1 orthogonal points,
        # absolute points exclude themselves.
        q = 5
        g = polarity_graph(q)
        N = q * q + q + 1
        assert g.m == (N * (q + 1) - (q + 1)) // 2
