"""Torus family tests (Figure 4 / Theorem 12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.constructions import (
    circular_distance,
    diagonal_torus,
    diagonal_torus_distance,
    diagonal_torus_vertices,
    rotated_torus,
    rotated_torus_distance,
    rotated_torus_index,
    rotated_torus_vertices,
    standard_torus,
)
from repro.core import is_max_equilibrium
from repro.graphs import (
    diameter,
    distance_matrix,
    distance_profiles_identical,
    eccentricities,
    is_connected,
)
from repro.theory import theorem12_check


class TestCircularDistance:
    def test_basic(self):
        assert circular_distance(0, 3, 8) == 3
        assert circular_distance(0, 5, 8) == 3
        assert circular_distance(2, 2, 8) == 0

    @given(st.integers(0, 99), st.integers(0, 99), st.integers(2, 100))
    @settings(max_examples=100, deadline=None)
    def test_metric_properties(self, a, b, m):
        a, b = a % m, b % m
        d = circular_distance(a, b, m)
        assert 0 <= d <= m // 2
        assert d == circular_distance(b, a, m)
        assert (d == 0) == (a == b)


class TestRotatedTorus:
    def test_vertex_count(self):
        for k in (2, 3, 5):
            assert rotated_torus(k).n == 2 * k * k

    def test_four_regular(self):
        g = rotated_torus(3)
        assert set(g.degrees().tolist()) == {4}

    def test_connected_and_transitive_profiles(self):
        g = rotated_torus(4)
        assert is_connected(g)
        assert distance_profiles_identical(g)

    def test_local_diameter_is_exactly_k(self):
        for k in (2, 3, 4, 6):
            ecc = eccentricities(rotated_torus(k))
            assert set(ecc.tolist()) == {k}

    def test_k_too_small(self):
        with pytest.raises(GraphError):
            rotated_torus(1)

    @given(st.integers(2, 6), st.data())
    @settings(max_examples=50, deadline=None)
    def test_distance_law(self, k, data):
        # d((i,j),(i',j')) = max(d_circ(i,i'), d_circ(j,j')) — the identity
        # all of Theorem 12 rests on.
        coords = rotated_torus_vertices(k)
        g = rotated_torus(k)
        dm = distance_matrix(g)
        u = data.draw(st.integers(0, g.n - 1))
        v = data.draw(st.integers(0, g.n - 1))
        assert dm[u, v] == rotated_torus_distance(k, coords[u], coords[v])

    def test_theorem12_full_check(self):
        for k in (2, 3, 4):
            assert theorem12_check(rotated_torus(k), k)

    def test_index_map_consistent(self):
        k = 3
        coords = rotated_torus_vertices(k)
        index = rotated_torus_index(k)
        assert all(index[c] == i for i, c in enumerate(coords))


class TestStandardTorusContrast:
    def test_not_max_equilibrium(self):
        # "a standard torus is not in max equilibrium, so the precise
        # definition is critical."
        assert not is_max_equilibrium(standard_torus(6, 6))

    def test_size_guard(self):
        with pytest.raises(GraphError):
            standard_torus(2, 5)


class TestDiagonalTorus:
    def test_vertex_count(self):
        # n = 2 k^d.
        assert diagonal_torus(2, 3).n == 16
        assert diagonal_torus(3, 2).n == 18
        assert diagonal_torus(2, 4).n == 32

    def test_degree_is_2_to_d(self):
        for k, d in ((2, 3), (3, 2), (2, 4)):
            g = diagonal_torus(k, d)
            assert set(g.degrees().tolist()) == {2**d}

    def test_reduces_to_rotated_torus_at_d2(self):
        assert diagonal_torus(3, 2).edge_set() == rotated_torus(3).edge_set()

    def test_diameter_is_k(self):
        for k, d in ((2, 3), (3, 3), (2, 4)):
            assert diameter(diagonal_torus(k, d)) == k

    @given(st.sampled_from([(2, 3), (3, 3), (2, 4)]), st.data())
    @settings(max_examples=40, deadline=None)
    def test_distance_law_d_dim(self, kd, data):
        k, d = kd
        coords = diagonal_torus_vertices(k, d)
        g = diagonal_torus(k, d)
        dm = distance_matrix(g)
        u = data.draw(st.integers(0, g.n - 1))
        v = data.draw(st.integers(0, g.n - 1))
        assert dm[u, v] == diagonal_torus_distance(k, coords[u], coords[v])

    def test_parity_classes(self):
        verts = diagonal_torus_vertices(2, 3)
        for c in verts:
            parities = {x % 2 for x in c}
            assert len(parities) == 1

    def test_deletion_critical(self):
        from repro.core import is_deletion_critical

        assert is_deletion_critical(diagonal_torus(2, 3))

    def test_bad_parameters(self):
        with pytest.raises(GraphError):
            diagonal_torus(1, 3)
        with pytest.raises(GraphError):
            diagonal_torus(3, 0)
