"""Figure 3 tests: the literal construction, its refutation, and the repair."""

import networkx as nx
import pytest

from repro.constructions import (
    figure3_all_straight_variant,
    figure3_graph,
    figure3_improving_swap,
    figure3_vertex_names,
    minimal_diameter3_witness,
    repaired_diameter3_witness,
)
from repro.core import Swap, find_sum_violation, is_sum_equilibrium, sum_cost, swap_cost_after
from repro.graphs import (
    diameter,
    eccentricities,
    girth,
    neighborhoods_are_independent,
    to_networkx,
)


class TestLiteralConstruction:
    def test_shape(self):
        g = figure3_graph()
        assert g.n == 13
        assert g.m == 21
        assert diameter(g) == 3

    def test_girth_4_via_independent_neighborhoods(self):
        # The paper's own certificate: neighbour sets are independent sets.
        g = figure3_graph()
        assert neighborhoods_are_independent(g)
        assert girth(g) == 4

    def test_local_diameters_match_paper(self):
        # "vertices a, bi, and di have local diameter 3, while vertices
        # ci,k have local diameter 2."
        g = figure3_graph()
        names = figure3_vertex_names()
        ecc = eccentricities(g)
        for v, name in names.items():
            expected = 2 if name.startswith("c") else 3
            assert int(ecc[v]) == expected, name

    def test_degrees(self):
        g = figure3_graph()
        names = figure3_vertex_names()
        for v, name in names.items():
            if name == "a":
                assert g.degree(v) == 3
            elif name.startswith("b"):
                assert g.degree(v) == 3  # a + two c's
            elif name.startswith("d"):
                assert g.degree(v) == 2
            else:  # c vertices: b, d, and two matching partners
                assert g.degree(v) == 4

    def test_all_straight_variant_has_girth_3(self):
        assert girth(figure3_all_straight_variant()) == 3


class TestReproductionFinding:
    """The paper's Figure 3 is NOT a sum equilibrium (machine-verified)."""

    def test_auditor_finds_violation(self):
        v = find_sum_violation(figure3_graph())
        assert v is not None

    def test_the_specific_swap_ledger(self):
        # d1 drops c1,1 and adds c2,1: 27 -> 26.
        g = figure3_graph()
        mover, drop, add = figure3_improving_swap()
        assert sum_cost(g, mover) == 27
        assert swap_cost_after(g, Swap(mover, drop, add), "sum", "copy") == 26

    def test_ledger_breakdown_via_networkx(self):
        # Independent recomputation: the per-vertex gain/loss pattern.
        g = figure3_graph()
        mover, drop, add = figure3_improving_swap()
        G = to_networkx(g)
        H = G.copy()
        H.remove_edge(mover, drop)
        H.add_edge(mover, add)
        before = nx.single_source_shortest_path_length(G, mover)
        after = nx.single_source_shortest_path_length(H, mover)
        deltas = {v: after[v] - before[v] for v in G if after[v] != before[v]}
        gains = sorted(v for v, d in deltas.items() if d < 0)
        losses = sorted(v for v, d in deltas.items() if d > 0)
        assert len(gains) == 3 and len(losses) == 2
        assert add in gains  # the new neighbour itself
        assert drop in losses  # the dropped neighbour

    def test_lemma8_carveout_is_the_culprit(self):
        # The swap target c2,1 is a *neighbour* of the dropped c1,1 (the
        # straight matching), so Lemma 8 only guarantees a +1 loss, not +2.
        g = figure3_graph()
        _, drop, add = figure3_improving_swap()
        assert g.has_edge(drop, add)


class TestRepairedWitness:
    def test_shape(self):
        g = repaired_diameter3_witness()
        assert g.n == 10
        assert g.m == 20
        assert diameter(g) == 3

    def test_is_sum_equilibrium_by_auditor(self):
        assert is_sum_equilibrium(repaired_diameter3_witness())

    def test_exhaustive_copy_mode_audit(self):
        # Independent of the vectorized auditor: every legal swap evaluated
        # by materializing the swapped graph.
        g = repaired_diameter3_witness()
        checked = 0
        for v in range(g.n):
            base = sum_cost(g, v)
            for w in map(int, g.neighbors(v)):
                for w2 in range(g.n):
                    if w2 in (v, w):
                        continue
                    after = swap_cost_after(g, Swap(v, w, w2), "sum", "copy")
                    assert after >= base, (v, w, w2)
                    checked += 1
        assert checked == 320

    def test_distance_3_is_realized(self):
        from repro.graphs import distance_matrix

        dm = distance_matrix(repaired_diameter3_witness())
        assert dm.max() == 3


class TestMinimalWitness:
    def test_shape(self):
        g = minimal_diameter3_witness()
        assert g.n == 8
        assert g.m == 12
        assert diameter(g) == 3

    def test_is_sum_equilibrium_by_auditor(self):
        assert is_sum_equilibrium(minimal_diameter3_witness())

    def test_exhaustive_copy_mode_audit(self):
        g = minimal_diameter3_witness()
        checked = 0
        for v in range(g.n):
            base = sum_cost(g, v)
            for w in map(int, g.neighbors(v)):
                for w2 in range(g.n):
                    if w2 in (v, w):
                        continue
                    after = swap_cost_after(g, Swap(v, w, w2), "sum", "copy")
                    assert after >= base, (v, w, w2)
                    checked += 1
        assert checked == 144

    def test_single_distance3_pair(self):
        from repro.graphs import distance_matrix

        dm = distance_matrix(minimal_diameter3_witness())
        pairs = [
            (u, v)
            for u in range(8)
            for v in range(u + 1, 8)
            if dm[u, v] == 3
        ]
        assert pairs == [(2, 5)]

    def test_below_exhaustive_frontier_nothing_exists(self):
        # Ties the witness to the census: n <= 5 checked inline here (n=6
        # takes ~30s and runs in the census experiment/test marked slow).
        from repro.core.exhaustive import exhaustive_equilibrium_census

        for n in (4, 5):
            census = exhaustive_equilibrium_census(n, "sum")
            assert census.max_equilibrium_diameter() <= 2
