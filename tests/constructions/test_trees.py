"""Tests for stars/double stars (Section 2, Figure 2)."""

import pytest

from repro.errors import GraphError
from repro.constructions import double_star, figure2_insertion_effects, figure2_tree
from repro.core import is_max_equilibrium, is_sum_equilibrium
from repro.graphs import diameter
from repro.theory import is_double_star, is_star


class TestDoubleStar:
    def test_structure(self):
        g = double_star(2, 3)
        assert g.n == 7
        assert g.has_edge(0, 1)
        assert g.degree(0) == 3  # root + 2 leaves
        assert g.degree(1) == 4
        assert diameter(g) == 3

    def test_is_double_star_predicate(self):
        from repro.graphs import path_graph, star_graph

        assert is_double_star(double_star(2, 2))
        assert not is_double_star(path_graph(5))  # three internal vertices
        assert not is_double_star(star_graph(5))  # one internal vertex

    def test_invalid_sizes(self):
        with pytest.raises(GraphError):
            double_star(0, 2)

    def test_max_equilibrium_iff_two_leaves_per_root(self):
        # The paper: "the latter type must have at least two leaves attached
        # to each star root".
        assert is_max_equilibrium(double_star(2, 2))
        assert is_max_equilibrium(double_star(2, 4))
        assert not is_max_equilibrium(double_star(1, 1))
        assert not is_max_equilibrium(double_star(1, 4))

    def test_never_sum_equilibrium(self):
        # Theorem 1: no diameter-3 tree is a sum equilibrium.
        assert not is_sum_equilibrium(double_star(2, 2))
        assert not is_sum_equilibrium(double_star(3, 3))


class TestFigure2Caption:
    def test_exact_tree(self):
        g = figure2_tree()
        assert g.n == 6
        assert diameter(g) == 3
        assert is_double_star(g)

    def test_insertion_effects_match_caption(self):
        effects = {e.label: e for e in figure2_insertion_effects()}
        # Cousin-leaf and far-leaf insertions help no endpoint.
        assert not effects["a-a' (cousin leaf)"].helps_someone
        assert not effects["a-b (far leaf)"].helps_someone
        # Only a-w decreases a's local diameter (3 -> 2), not w's.
        aw = effects["a-w (far root)"]
        assert aw.helps_someone
        assert aw.ecc_before[0] == 3 and aw.ecc_after[0] == 2
        assert aw.ecc_after[1] == aw.ecc_before[1]

    def test_but_the_swap_restores_the_diameter(self):
        # "In any swap around a, this addition must be combined with the
        # deletion of edge av, which restores the original local diameter."
        from repro.core import Swap, swap_cost_after

        g = figure2_tree()
        a, v, w = 2, 0, 1
        after = swap_cost_after(g, Swap(a, v, w), "max")
        assert after == 3  # unchanged
