"""Spider (Conjecture 14 counterexample) tests."""

import pytest

from repro.errors import GraphError
from repro.analysis import distance_uniformity, pairwise_concentration
from repro.constructions import SpiderShape, spider_for_epsilon, spider_graph
from repro.graphs import diameter, is_connected


class TestShape:
    def test_counts(self):
        s = SpiderShape(legs=3, path_len=2, blob=4)
        assert s.n == 1 + 3 * 6
        assert s.diameter == 6
        g = spider_graph(s)
        assert g.n == s.n
        assert is_connected(g)
        assert diameter(g) == s.diameter

    def test_hub_degree_is_legs(self):
        s = SpiderShape(legs=5, path_len=1, blob=2)
        assert spider_graph(s).degree(0) == 5

    def test_invalid_shapes(self):
        with pytest.raises(GraphError):
            spider_graph(SpiderShape(legs=1, path_len=2, blob=2))
        with pytest.raises(GraphError):
            spider_graph(SpiderShape(legs=2, path_len=0, blob=2))


class TestEpsilonParameterization:
    def test_legs_scale_inverse_epsilon(self):
        assert spider_for_epsilon(0.25, 8).legs == 4
        assert spider_for_epsilon(0.125, 8).legs == 8

    def test_diameter_hits_target(self):
        for eps, d in ((0.25, 6), (0.2, 10)):
            shape = spider_for_epsilon(eps, d)
            assert diameter(spider_graph(shape)) == d

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            spider_for_epsilon(0.0, 8)
        with pytest.raises(GraphError):
            spider_for_epsilon(0.25, 7)  # odd diameter


class TestSeparation:
    def test_pairwise_concentrates_but_per_vertex_does_not(self):
        # The paper's point: almost all PAIRS at one distance does not give
        # per-vertex distance uniformity.
        shape = spider_for_epsilon(0.125, 8)
        g = spider_graph(shape)
        r, frac = pairwise_concentration(g)
        assert r == shape.modal_pair_distance
        assert frac > 0.6  # a solid majority of pairs at the modal distance
        report = distance_uniformity(g)
        assert report.epsilon > 0.9  # per-vertex uniformity fails badly

    def test_hub_is_the_obstruction(self):
        # The hub sees everything within path_len + 2 < diameter.
        shape = spider_for_epsilon(0.25, 8)
        g = spider_graph(shape)
        from repro.graphs import bfs_distances

        hub = bfs_distances(g, 0)
        assert hub.max() == shape.path_len + 1  # path tip + blob leaf
