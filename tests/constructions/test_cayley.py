"""Abelian Cayley graph tests (Theorem 15's objects)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.constructions import (
    AbelianGroup,
    cayley_graph,
    circulant_graph,
    even_sum_subgroup_cayley,
    hypercube_graph,
    random_connection_set,
    rotated_torus,
)
from repro.graphs import cycle_graph, diameter, distance_profiles_identical, is_connected


class TestAbelianGroup:
    def test_order(self):
        assert AbelianGroup((4, 3)).order == 12
        assert AbelianGroup((2, 2, 2)).order == 8

    def test_index_element_round_trip(self):
        g = AbelianGroup((3, 4, 5))
        for idx in range(0, g.order, 7):
            assert g.index(g.element(idx)) == idx

    def test_arithmetic(self):
        g = AbelianGroup((5, 5))
        assert g.add((3, 4), (4, 3)) == (2, 2)
        assert g.negate((1, 0)) == (4, 0)
        assert g.reduce((-1, 7)) == (4, 2)

    def test_symmetric_connection_check(self):
        g = AbelianGroup((6,))
        assert g.is_symmetric_connection_set([(1,), (5,)])
        assert not g.is_symmetric_connection_set([(1,)])
        assert not g.is_symmetric_connection_set([(0,)])

    def test_invalid_moduli(self):
        with pytest.raises(GraphError):
            AbelianGroup(())
        with pytest.raises(GraphError):
            AbelianGroup((0, 3))


class TestCayleyGraphs:
    def test_circulant_pm1_is_cycle(self):
        assert circulant_graph(8, [1]) == cycle_graph(8)

    def test_circulant_regularity(self):
        g = circulant_graph(12, [1, 5])
        assert set(g.degrees().tolist()) == {4}
        assert distance_profiles_identical(g)

    def test_circulant_zero_offset_rejected(self):
        with pytest.raises(GraphError):
            circulant_graph(6, [6])

    def test_asymmetric_connection_rejected(self):
        with pytest.raises(GraphError):
            cayley_graph((7,), [(1,)])

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert g.m == 32
        assert diameter(g) == 4

    def test_hypercube_invalid(self):
        with pytest.raises(GraphError):
            hypercube_graph(0)

    def test_involution_generator(self):
        # Z_4 with S = {2} (its own inverse): a perfect matching structure.
        g = cayley_graph((4,), [(2,)])
        assert g.m == 2
        assert not is_connected(g)

    @given(st.integers(4, 16), st.integers(1, 3), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_cayley_graphs_are_profile_regular(self, m, gens, seed):
        gens = min(gens, m // 2)  # groups only have floor(m/2) generator pairs
        conn = random_connection_set((m,), gens, seed)
        g = cayley_graph((m,), conn)
        if is_connected(g):
            # Vertex transitivity implies identical distance profiles.
            assert distance_profiles_identical(g)


class TestRandomConnectionSets:
    def test_symmetric_and_zero_free(self):
        group = AbelianGroup((5, 5))
        conn = random_connection_set((5, 5), 4, seed=1)
        assert group.is_symmetric_connection_set(conn)

    def test_size_bound_enforced(self):
        with pytest.raises(GraphError):
            random_connection_set((3,), 5, seed=0)

    def test_deterministic(self):
        a = random_connection_set((8, 8), 3, seed=9)
        b = random_connection_set((8, 8), 3, seed=9)
        assert a == b


class TestPaperBridge:
    def test_even_sum_cayley_equals_rotated_torus(self):
        # "the graph described in Section 4 is the Cayley graph of the
        # group of elements of Z_2k^2 with even coordinate sum w.r.t.
        # S = {(±1, ±1)}" — identical vertex order makes this exact.
        for k in (2, 3, 4):
            gc, coords = even_sum_subgroup_cayley(k)
            gt = rotated_torus(k)
            assert gc.edge_set() == gt.edge_set()
            assert len(coords) == 2 * k * k
