"""API surface tests: exports resolve, error hierarchy, version.

Guards against the classic packaging failures — `__all__` names that don't
exist, subpackage re-exports drifting from implementations, and error
classes that stop deriving from the library root.
"""

import importlib

import pytest

import repro
from repro import errors


PACKAGES = [
    "repro",
    "repro.graphs",
    "repro.core",
    "repro.constructions",
    "repro.analysis",
    "repro.theory",
    "repro.games",
    "repro.parallel",
    "repro.bench",
    "repro.io",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_unique(name):
    module = importlib.import_module(name)
    exported = list(getattr(module, "__all__", []))
    assert len(exported) == len(set(exported)), f"{name} has duplicate exports"


def test_version_is_pep440ish():
    assert repro.__version__.count(".") == 2
    assert all(part.isdigit() for part in repro.__version__.split("."))


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for symbol in errors.__all__:
            cls = getattr(errors, symbol)
            assert issubclass(cls, errors.ReproError)

    def test_graph_errors(self):
        assert issubclass(errors.InvalidEdgeError, errors.GraphError)
        assert issubclass(errors.DisconnectedGraphError, errors.GraphError)

    def test_move_errors(self):
        assert issubclass(errors.IllegalSwapError, errors.MoveError)

    def test_convergence_error_carries_state(self):
        err = errors.ConvergenceError("budget", state="partial", steps=12)
        assert err.state == "partial"
        assert err.steps == 12

    def test_catching_the_root_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.IllegalSwapError("x")
        with pytest.raises(errors.ReproError):
            raise errors.ConfigurationError("y")


class TestCrossLayerConsistency:
    def test_top_level_reexports_match_sources(self):
        from repro.core import is_sum_equilibrium as src

        assert repro.is_sum_equilibrium is src

    def test_unreachable_constant_consistent(self):
        from repro.graphs import UNREACHABLE
        from repro.graphs.bfs import UNREACHABLE as inner

        assert UNREACHABLE == inner == -1

    def test_int_inf_headroom_documented_invariant(self):
        import numpy as np

        from repro.core import INT_INF

        # (INT_INF + 1) * n must not overflow int64 for any plausible n.
        assert (INT_INF + 1) * (1 << 20) < np.iinfo(np.int64).max
