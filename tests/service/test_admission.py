"""Bounded admission: capacity, queueing, typed shedding, queued deadlines."""

import threading
import time

import pytest

from repro.errors import ConfigurationError, DeadlineExceeded
from repro.service.admission import AdmissionGate, LoadShed


class TestConfig:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionGate(queue_limit=-1)


class TestFlow:
    def test_serial_requests_all_admitted(self):
        gate = AdmissionGate(capacity=1, queue_limit=0)
        for _ in range(5):
            with gate.slot():
                pass
        snap = gate.snapshot()
        assert snap["admitted_count"] == 5 and snap["shed_count"] == 0

    def test_overflow_is_shed_with_retry_after(self):
        gate = AdmissionGate(capacity=1, queue_limit=0, retry_after=2.5)
        release = threading.Event()
        started = threading.Event()

        def holder():
            with gate.slot():
                started.set()
                release.wait(5.0)

        t = threading.Thread(target=holder)
        t.start()
        try:
            assert started.wait(5.0)
            with pytest.raises(LoadShed) as err:
                with gate.slot():
                    pass
            assert err.value.retry_after == 2.5
            assert gate.snapshot()["shed_count"] == 1
        finally:
            release.set()
            t.join()

    def test_queued_request_gets_slot_when_freed(self):
        gate = AdmissionGate(capacity=1, queue_limit=2)
        release = threading.Event()
        started = threading.Event()
        order = []

        def holder():
            with gate.slot():
                started.set()
                release.wait(5.0)
                order.append("holder")

        def waiter():
            with gate.slot():
                order.append("waiter")

        t1 = threading.Thread(target=holder)
        t1.start()
        assert started.wait(5.0)
        t2 = threading.Thread(target=waiter)
        t2.start()
        time.sleep(0.05)  # t2 is now queued
        assert gate.snapshot()["queued"] == 1
        release.set()
        t1.join()
        t2.join()
        assert order == ["holder", "waiter"]

    def test_queued_deadline_expires_typed(self):
        gate = AdmissionGate(capacity=1, queue_limit=2)
        release = threading.Event()
        started = threading.Event()

        def holder():
            with gate.slot():
                started.set()
                release.wait(5.0)

        t = threading.Thread(target=holder)
        t.start()
        try:
            assert started.wait(5.0)
            start = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                with gate.slot(deadline=start + 0.1):
                    pass
            assert time.monotonic() - start < 2.0
            # The expired waiter left the queue; nothing is leaked.
            assert gate.snapshot()["queued"] == 0
        finally:
            release.set()
            t.join()

    def test_slot_released_on_exception(self):
        gate = AdmissionGate(capacity=1, queue_limit=0)
        with pytest.raises(RuntimeError):
            with gate.slot():
                raise RuntimeError("boom")
        with gate.slot():  # slot was released despite the exception
            pass
