"""The degradation ladder: descent thresholds, probes, and recovery."""

import pytest

from repro.errors import ConfigurationError
from repro.service.degradation import MODES, DegradationLadder


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def ladder(clock):
    return DegradationLadder(threshold=2, recover_after=30.0, clock=clock)


class TestDescent:
    def test_starts_healthy(self, ladder):
        assert ladder.mode == "pool"
        assert ladder.plan() == list(MODES)

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            DegradationLadder(threshold=0)

    def test_single_failure_does_not_descend(self, ladder):
        ladder.record_failure("pool")
        assert ladder.mode == "pool"

    def test_consecutive_failures_descend_one_rung(self, ladder):
        ladder.record_failure("pool")
        ladder.record_failure("pool")
        assert ladder.mode == "serial"
        assert ladder.plan() == ["serial", "cache-only"]

    def test_success_resets_the_streak(self, ladder):
        ladder.record_failure("pool")
        ladder.record_success("pool")
        ladder.record_failure("pool")
        assert ladder.mode == "pool"

    def test_reaches_cache_only(self, ladder):
        for _ in range(2):
            ladder.record_failure("pool")
        for _ in range(2):
            ladder.record_failure("serial")
        assert ladder.mode == "cache-only"
        assert ladder.plan() == ["cache-only"]
        assert ladder.snapshot()["descents"] == 2

    def test_in_request_fallback_failures_dont_double_count(self, ladder):
        # A pool-mode request that falls back to serial *within* the
        # request reports both failures; only the current rung's counts.
        ladder.record_failure("pool")
        ladder.record_failure("serial")  # rung below current: ignored
        assert ladder.mode == "pool"
        ladder.record_failure("pool")
        assert ladder.mode == "serial"


class TestRecovery:
    def _degrade(self, ladder, rungs=1):
        for _ in range(rungs):
            mode = ladder.mode
            ladder.record_failure(mode)
            ladder.record_failure(mode)

    def test_no_probe_before_cooldown(self, ladder, clock):
        self._degrade(ladder)
        clock.advance(29.0)
        assert ladder.plan() == ["serial", "cache-only"]

    def test_probe_after_cooldown(self, ladder, clock):
        self._degrade(ladder)
        clock.advance(31.0)
        assert ladder.plan() == ["pool", "serial", "cache-only"]
        # Exactly one request probes; the next keeps the degraded plan.
        assert ladder.plan() == ["serial", "cache-only"]

    def test_successful_probe_ascends(self, ladder, clock):
        self._degrade(ladder)
        clock.advance(31.0)
        assert ladder.plan()[0] == "pool"
        ladder.record_success("pool")
        assert ladder.mode == "pool"
        assert ladder.snapshot()["recoveries"] == 1

    def test_failed_probe_stays_and_restarts_clock(self, ladder, clock):
        self._degrade(ladder)
        clock.advance(31.0)
        assert ladder.plan()[0] == "pool"
        ladder.record_failure("pool")
        assert ladder.mode == "serial"
        clock.advance(29.0)
        assert ladder.plan() == ["serial", "cache-only"]  # clock restarted
        clock.advance(2.0)
        assert ladder.plan()[0] == "pool"

    def test_cache_only_recovers_one_rung_at_a_time(self, ladder, clock):
        self._degrade(ladder, rungs=2)
        assert ladder.mode == "cache-only"
        clock.advance(31.0)
        assert ladder.plan() == ["serial", "cache-only"]
        ladder.record_success("serial")
        assert ladder.mode == "serial"
        clock.advance(31.0)
        assert ladder.plan()[0] == "pool"
        ladder.record_success("pool")
        assert ladder.mode == "pool"
        assert ladder.snapshot()["recoveries"] == 2
