"""The audit service end to end: correctness, faults, deadlines, HTTP.

The acceptance contract of ISSUE 7: under injected faults the service
returns only bit-correct results (cached answers equal fresh oracle
answers), corrupted cache entries are quarantined and recomputed, the
deadline-exceeded and load-shed responses are typed, and the degradation
ladder reaches cache-only and recovers.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import best_swap, find_swap_violation
from repro.errors import DeadlineExceeded
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_connected_gnm,
    star_graph,
)
from repro.graphs.graph6 import to_graph6
from repro.io import ResultCache
from repro.parallel import faults, shutdown_shared_pools
from repro.parallel.faults import InjectedFault
from repro.service import (
    AuditEngine,
    ClientError,
    DegradationLadder,
    LoadShed,
    NotModified,
    build_server,
)
from repro.service.handlers import _json_safe, _violation_payload


@pytest.fixture(autouse=True)
def _clean_runtime():
    faults.clear_hooks()
    yield
    faults.clear_hooks()
    shutdown_shared_pools()


@pytest.fixture
def engine(tmp_path):
    return AuditEngine(ResultCache(tmp_path / "rc"), workers=2)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def _g6(graph):
    return to_graph6(graph)


class TestEngineBasics:
    def test_audit_then_cached(self, engine):
        request = {"query": "find_swap_violation", "graph6": _g6(path_graph(6))}
        first = engine.handle_audit(request)
        again = engine.handle_audit(request)
        assert first["ok"] and not first["cached"]
        assert again["cached"] and again["compute_mode"] == "cache"
        assert again["result"] == first["result"]

    def test_explicit_edge_list_graph(self, engine):
        response = engine.handle_audit(
            {
                "query": "is_equilibrium",
                "graph": {"n": 3, "edges": [[0, 1], [1, 2], [0, 2]]},
                "model": "sum",
            }
        )
        assert response["result"] == {"is_equilibrium": True}

    def test_model_spec_is_canonicalized(self, engine):
        g6 = _g6(cycle_graph(6))
        a = engine.handle_audit(
            {"query": "is_equilibrium", "graph6": g6,
             "model": "interest-sum:k=2,seed=9"}
        )
        b = engine.handle_audit(
            {"query": "is_equilibrium", "graph6": g6,
             "model": "interest-sum:seed=9,k=2"}
        )
        assert a["model"] == b["model"]
        assert b["cached"]  # same canonical spec, same content address

    def test_batch_shares_fingerprint_and_caches(self, engine):
        g6 = _g6(star_graph(7))
        response = engine.handle_batch(
            {
                "graph6": g6,
                "model": "max",
                "queries": [
                    {"query": "is_equilibrium"},
                    {"query": "criticality"},
                    {"query": "best_swap", "vertex": 1},
                ],
            }
        )
        assert response["count"] == 3
        assert all(r["ok"] for r in response["results"])
        again = engine.handle_batch(
            {
                "graph6": g6,
                "model": "max",
                "queries": [{"query": "criticality"}],
            }
        )
        assert again["results"][0]["cached"]
        assert (
            again["results"][0]["result"]
            == response["results"][1]["result"]
        )

    def test_client_errors_are_typed(self, engine):
        g6 = _g6(path_graph(4))
        with pytest.raises(ClientError):
            engine.handle_audit({"query": "nope", "graph6": g6})
        with pytest.raises(ClientError):
            engine.handle_audit({"query": "is_equilibrium"})
        with pytest.raises(ClientError):
            engine.handle_audit({"query": "best_swap", "graph6": g6})
        with pytest.raises(ClientError):
            engine.handle_audit(
                {"query": "is_equilibrium", "graph6": g6, "timeout_s": -1}
            )
        with pytest.raises(ClientError):
            engine.handle_batch({"graph6": g6, "queries": []})

    def test_client_error_never_touches_the_ladder(self, engine):
        with pytest.raises(Exception):
            engine.handle_audit(
                {
                    "query": "is_equilibrium",
                    # Disconnected: an audit-domain error, not an infra one.
                    "graph": {"n": 4, "edges": [[0, 1], [2, 3]]},
                }
            )
        assert engine.ladder.mode == "pool"
        assert engine.compute_failures == 0


class TestOracleEquivalence:
    """Cached answers are bit-equal to fresh oracle-mode answers."""

    GRAPHS = [
        path_graph(7),
        cycle_graph(8),
        star_graph(6),
        random_connected_gnm(12, 18, seed=5),
    ]

    def test_swap_violations_match_rebuild_oracle(self, engine):
        for graph in self.GRAPHS:
            for model in ("sum", "max"):
                request = {
                    "query": "find_swap_violation",
                    "graph6": _g6(graph),
                    "model": model,
                }
                engine.handle_audit(request)  # populate
                cached = engine.handle_audit(request)
                assert cached["cached"]
                oracle = _violation_payload(
                    find_swap_violation(graph, model, mode="rebuild")
                )
                assert cached["result"] == oracle

    def test_best_swap_matches_oracle_mode(self, engine):
        for graph in self.GRAPHS:
            request = {
                "query": "best_swap",
                "graph6": _g6(graph),
                "model": "sum",
                "vertex": 0,
            }
            engine.handle_audit(request)
            cached = engine.handle_audit(request)
            assert cached["cached"]
            oracle = best_swap(graph, 0, "sum", mode="oracle")
            swap = oracle.swap
            assert cached["result"] == _json_safe(
                {
                    "swap": (
                        None if swap is None
                        else [swap.vertex, swap.drop, swap.add]
                    ),
                    "before": float(oracle.before),
                    "after": float(oracle.after),
                    "is_deletion": bool(oracle.is_deletion),
                }
            )


class TestFaultsThroughEngine:
    def test_torn_cache_write_never_corrupts_a_response(
        self, tmp_path, engine, monkeypatch
    ):
        # Fire one torn write at this test's cache only (unique tmp path).
        monkeypatch.setenv(
            faults.ENV_SPEC, f"torn-write:path={tmp_path.name}"
        )
        request = {"query": "find_swap_violation", "graph6": _g6(path_graph(6))}
        first = engine.handle_audit(request)
        assert first["ok"] and not first["cached"]  # answer served anyway
        assert engine.store_failures == 1
        second = engine.handle_audit(request)  # tear detected: recompute
        assert not second["cached"]
        assert second["result"] == first["result"]
        assert engine.cache.stats()["quarantined"] == 1
        third = engine.handle_audit(request)  # recompute was published
        assert third["cached"]
        assert third["result"] == first["result"]

    def test_infra_fault_degrades_in_place(self, engine):
        calls = []

        def poison_pool_attempts(site):
            if "query" in site:
                calls.append(site)
                if len(calls) == 1:  # only the first (pool-mode) attempt
                    raise InjectedFault("injected pool failure")

        faults.install_hook(poison_pool_attempts)
        response = engine.handle_audit(
            {"query": "is_equilibrium", "graph6": _g6(cycle_graph(5))}
        )
        assert response["ok"] and response["compute_mode"] == "serial"
        assert engine.ladder.mode == "pool"  # one blip: no descent


class TestLadderLifecycle:
    def test_reaches_cache_only_and_recovers(self, tmp_path):
        clock = FakeClock()
        engine = AuditEngine(
            ResultCache(tmp_path / "rc"),
            workers=2,
            ladder=DegradationLadder(
                threshold=2, recover_after=30.0, clock=clock
            ),
        )
        hot = {"query": "is_equilibrium", "graph6": _g6(path_graph(5))}
        engine.handle_audit(hot)  # prime one answer while healthy

        def poison_all_compute(site):
            if "query" in site:
                raise InjectedFault("injected compute failure")

        faults.install_hook(poison_all_compute)
        cold = {"query": "is_equilibrium", "graph6": _g6(cycle_graph(7))}
        for _ in range(2):  # two pool-rung failures -> serial
            with pytest.raises(RuntimeError):
                engine.handle_audit(cold)
        assert engine.ladder.mode == "serial"
        for _ in range(2):  # two serial-rung failures -> cache-only
            with pytest.raises(RuntimeError):
                engine.handle_audit(cold)
        assert engine.ladder.mode == "cache-only"

        # Cache-only: hits are still served, misses are shed typed.
        assert engine.handle_audit(hot)["cached"]
        with pytest.raises(LoadShed) as shed:
            engine.handle_audit(cold)
        assert shed.value.retry_after == 30.0

        # Recovery: probes ascend one rung at a time once compute heals.
        faults.clear_hooks()
        clock.now += 31.0
        assert engine.handle_audit(cold)["compute_mode"] == "serial"
        assert engine.ladder.mode == "serial"
        clock.now += 31.0
        fresh = {"query": "is_equilibrium", "graph6": _g6(star_graph(5))}
        assert engine.handle_audit(fresh)["compute_mode"] == "pool"
        assert engine.ladder.mode == "pool"
        assert engine.ladder.snapshot()["recoveries"] == 2


class TestDeadline:
    def test_spent_deadline_is_typed_not_a_hang(self, engine):
        with pytest.raises(DeadlineExceeded):
            engine.handle_audit(
                {
                    "query": "find_swap_violation",
                    "graph6": _g6(random_connected_gnm(20, 30, seed=2)),
                    "timeout_s": 1e-6,
                }
            )
        assert engine.ladder.mode == "pool"  # a spent budget is not infra

    def test_cache_hit_beats_the_deadline(self, engine):
        request = {"query": "is_equilibrium", "graph6": _g6(path_graph(5))}
        engine.handle_audit(request)
        hit = engine.handle_audit({**request, "timeout_s": 1e-6})
        assert hit["cached"]


class TestKSwapAudit:
    """The k_swap_stable query kind: exponential audit behind a deadline."""

    def test_stable_and_unstable_verdicts(self, engine):
        # Under the paper's max objective a star is 1-swap stable (no
        # single move lowers any vertex's eccentricity); a path is not.
        stable = engine.handle_audit(
            {"query": "k_swap_stable", "graph6": _g6(star_graph(6)),
             "k": 1, "model": "max"}
        )
        assert stable["result"] == {"k_swap_stable": True, "k": 1}
        unstable = engine.handle_audit(
            {"query": "k_swap_stable", "graph6": _g6(path_graph(6)),
             "k": 1, "model": "max"}
        )
        assert unstable["result"] == {"k_swap_stable": False, "k": 1}

    def test_k_defaults_to_one_and_keys_the_cache(self, engine):
        g6 = _g6(star_graph(5))
        implicit = engine.handle_audit({"query": "k_swap_stable", "graph6": g6})
        assert implicit["result"]["k"] == 1
        hit = engine.handle_audit(
            {"query": "k_swap_stable", "graph6": g6, "k": 1}
        )
        assert hit["cached"]  # same k, same content address
        other = engine.handle_audit(
            {"query": "k_swap_stable", "graph6": g6, "k": 2}
        )
        assert not other["cached"]  # a different k is a different audit

    def test_bad_k_is_a_client_error(self, engine):
        g6 = _g6(path_graph(4))
        with pytest.raises(ClientError):
            engine.handle_audit(
                {"query": "k_swap_stable", "graph6": g6, "k": 0}
            )
        with pytest.raises(ClientError):
            engine.handle_audit(
                {"query": "k_swap_stable", "graph6": g6, "k": "two"}
            )
        assert engine.ladder.mode == "pool"

    def test_spent_deadline_is_typed(self, engine):
        with pytest.raises(DeadlineExceeded):
            engine.handle_audit(
                {
                    "query": "k_swap_stable",
                    "graph6": _g6(random_connected_gnm(20, 30, seed=2)),
                    "k": 2,
                    "timeout_s": 1e-6,
                }
            )
        assert engine.ladder.mode == "pool"  # a spent budget is not infra


class TestETag:
    REQUEST = {"query": "find_swap_violation"}

    def _request(self):
        return {**self.REQUEST, "graph6": _g6(path_graph(6))}

    def test_every_answer_carries_its_cache_key_as_etag(self, engine):
        first = engine.handle_audit(self._request())
        again = engine.handle_audit(self._request())
        assert first["etag"] and first["etag"] == again["etag"]

    def test_matching_validator_on_cached_answer_raises(self, engine):
        etag = engine.handle_audit(self._request())["etag"]
        with pytest.raises(NotModified) as exc:
            engine.handle_audit(
                self._request(), if_none_match=f'"{etag}"'
            )
        assert exc.value.etag == etag
        assert engine.not_modified == 1
        assert engine.stats()["not_modified"] == 1

    def test_unquoted_weak_and_list_validators_match(self, engine):
        etag = engine.handle_audit(self._request())["etag"]
        for header in (etag, f'W/"{etag}"', f'"zzz", "{etag}"', "*"):
            with pytest.raises(NotModified):
                engine.handle_audit(self._request(), if_none_match=header)

    def test_stale_validator_serves_the_cached_body(self, engine):
        engine.handle_audit(self._request())
        response = engine.handle_audit(
            self._request(), if_none_match='"somebody-elses-answer"'
        )
        assert response["cached"]

    def test_uncached_answer_never_skipped_on_clients_word(self, engine):
        # The validator may name this key, but nothing is cached yet: the
        # service computes and serves the full body regardless.
        response = engine.handle_audit(self._request(), if_none_match="*")
        assert response["ok"] and not response["cached"]
        assert engine.not_modified == 0


class _Client:
    def __init__(self, base):
        self.base = base

    def get(self, path):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as r:
                return r.status, json.loads(r.read()), dict(r.headers)
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read()), dict(err.headers)

    def post(self, path, body, headers=None):
        data = (
            body if isinstance(body, bytes) else json.dumps(body).encode()
        )
        merged = {"Content-Type": "application/json", **(headers or {})}
        req = urllib.request.Request(
            self.base + path, data=data, method="POST", headers=merged,
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as r:
                raw = r.read()
                return r.status, json.loads(raw) if raw else None, dict(r.headers)
        except urllib.error.HTTPError as err:
            raw = err.read()
            return err.code, json.loads(raw) if raw else None, dict(err.headers)


@pytest.fixture
def http(tmp_path):
    server = build_server(
        port=0, cache_dir=str(tmp_path / "rc"), workers=2,
        capacity=1, queue_limit=4,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    try:
        yield _Client(f"http://{host}:{port}"), server
    finally:
        server.close()
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestHTTP:
    def test_healthz_and_stats(self, http):
        client, _ = http
        status, body, _ = client.get("/healthz")
        assert status == 200 and body["ok"] and body["mode"] == "pool"
        status, body, _ = client.get("/stats")
        assert status == 200
        for section in ("cache", "admission", "degradation"):
            assert section in body
        assert "hit_rate" in body["cache"]
        assert "shed_count" in body["admission"]

    def test_audit_roundtrip_and_hit(self, http):
        client, _ = http
        request = {"query": "find_swap_violation", "graph6": _g6(path_graph(6))}
        status, first, _ = client.post("/audit", request)
        assert status == 200 and first["ok"] and not first["cached"]
        status, again, _ = client.post("/audit", request)
        assert status == 200 and again["cached"]
        assert again["result"] == first["result"]

    def test_etag_header_and_if_none_match_304(self, http):
        client, server = http
        request = {"query": "find_swap_violation", "graph6": _g6(path_graph(6))}
        status, first, headers = client.post("/audit", request)
        assert status == 200
        etag = headers["ETag"]
        assert etag == f'"{first["etag"]}"'
        # A matching validator on the now-cached answer: 304, no body.
        status, body, headers = client.post(
            "/audit", request, headers={"If-None-Match": etag}
        )
        assert status == 304 and body is None
        assert headers["ETag"] == etag
        assert server.engine.not_modified == 1
        # A stale validator still gets the full cached answer.
        status, body, _ = client.post(
            "/audit", request, headers={"If-None-Match": '"stale"'}
        )
        assert status == 200 and body["cached"]
        _, stats, _ = client.get("/stats")
        assert stats["not_modified"] == 1

    def test_not_found_and_bad_json_are_typed(self, http):
        client, _ = http
        status, body, _ = client.get("/nope")
        assert status == 404 and body["error"] == "not-found"
        status, body, _ = client.post("/audit", b"{not json")
        assert status == 400 and body["error"] == "bad-request"
        status, body, _ = client.post("/audit", {"query": "explode"})
        assert status == 400 and body["error"] == "bad-request"

    def test_deadline_exceeded_is_a_typed_504(self, http):
        client, server = http
        status, body, _ = client.post(
            "/audit",
            {
                "query": "find_swap_violation",
                "graph6": _g6(random_connected_gnm(20, 30, seed=2)),
                "timeout_s": 1e-6,
            },
        )
        assert status == 504 and body["error"] == "deadline-exceeded"
        assert server.engine.deadline_exceeded == 1

    def test_k_swap_audit_timeout_is_a_typed_504(self, http):
        client, server = http
        status, body, _ = client.post(
            "/audit",
            {
                "query": "k_swap_stable",
                "graph6": _g6(random_connected_gnm(20, 30, seed=2)),
                "k": 2,
                "timeout_s": 1e-6,
            },
        )
        assert status == 504 and body["error"] == "deadline-exceeded"
        assert server.engine.deadline_exceeded == 1

    def test_load_shed_is_a_typed_503_with_retry_after(self, http):
        client, server = http
        # Saturate admission from the outside: capacity 1, queue 0 left.
        server.engine.gate.queue_limit = 0
        with server.engine.gate.slot():
            status, body, headers = client.post(
                "/audit",
                {"query": "is_equilibrium", "graph6": _g6(cycle_graph(9))},
            )
        assert status == 503 and body["error"] == "load-shed"
        assert "retry_after_s" in body
        assert "Retry-After" in headers

    def test_batch_over_http(self, http):
        client, _ = http
        status, body, _ = client.post(
            "/batch",
            {
                "graph6": _g6(star_graph(6)),
                "model": "max",
                "queries": [
                    {"query": "is_equilibrium"},
                    {"query": "criticality"},
                ],
            },
        )
        assert status == 200 and body["count"] == 2
        assert all(r["ok"] for r in body["results"])
