"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs import CSRGraph, random_connected_gnm, random_tree


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 16):
    """A random connected graph with a deterministic Hypothesis-driven seed."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_connected_gnm(n, m, seed)


@st.composite
def trees(draw, min_n: int = 2, max_n: int = 20):
    """A uniform random labelled tree."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_tree(n, seed)


@st.composite
def edge_lists(draw, max_n: int = 12):
    """A (possibly disconnected) simple graph as (n, edges)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    return n, chosen


# ---------------------------------------------------------------------------
# Deterministic cross-validation battery
# ---------------------------------------------------------------------------

def graph_battery(
    count: int = 216, min_n: int = 2, max_n: int = 14
) -> list[CSRGraph]:
    """≥ ``count`` deterministic connected graphs for oracle cross-checks.

    Cycles through the three census-style families — uniform random trees
    (every edge a bridge), sparse connected G(n, m), and dense G(n, m) —
    plus the n ≤ 3 edge cases, so incremental-vs-oracle tests exercise
    bridges, disconnecting removals, and degenerate sizes by construction.
    """
    graphs: list[CSRGraph] = [
        CSRGraph(1, []),
        CSRGraph(2, [(0, 1)]),
        CSRGraph(3, [(0, 1), (1, 2)]),
        CSRGraph(3, [(0, 1), (1, 2), (0, 2)]),
    ]
    rng = np.random.default_rng(20260726)
    while len(graphs) < count:
        n = int(rng.integers(min_n, max_n + 1))
        family = len(graphs) % 3
        seed = int(rng.integers(2**31 - 1))
        if family == 0:
            graphs.append(random_tree(n, seed))
        else:
            max_m = n * (n - 1) // 2
            lo = n - 1
            hi = max(lo, (n - 1) + (max_m - (n - 1)) // 4)
            if family == 2:
                lo, hi = hi, max_m
            m = int(rng.integers(lo, hi + 1))
            graphs.append(random_connected_gnm(n, m, seed))
    return graphs


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """A fixed 40-vertex connected graph reused by integration tests."""
    return random_connected_gnm(40, 90, seed=12345)


@pytest.fixture(scope="session")
def small_tree() -> CSRGraph:
    """A fixed 12-vertex random tree."""
    return random_tree(12, seed=999)
