"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs import CSRGraph, random_connected_gnm, random_tree


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 16):
    """A random connected graph with a deterministic Hypothesis-driven seed."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_connected_gnm(n, m, seed)


@st.composite
def trees(draw, min_n: int = 2, max_n: int = 20):
    """A uniform random labelled tree."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_tree(n, seed)


@st.composite
def edge_lists(draw, max_n: int = 12):
    """A (possibly disconnected) simple graph as (n, edges)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    return n, chosen


# ---------------------------------------------------------------------------
# Deterministic cross-validation battery
# ---------------------------------------------------------------------------

def graph_battery(
    count: int = 216, min_n: int = 2, max_n: int = 14
) -> list[CSRGraph]:
    """≥ ``count`` deterministic connected graphs for oracle cross-checks.

    Cycles through the three census-style families — uniform random trees
    (every edge a bridge), sparse connected G(n, m), and dense G(n, m) —
    plus the n ≤ 3 edge cases, so incremental-vs-oracle tests exercise
    bridges, disconnecting removals, and degenerate sizes by construction.
    """
    graphs: list[CSRGraph] = [
        CSRGraph(1, []),
        CSRGraph(2, [(0, 1)]),
        CSRGraph(3, [(0, 1), (1, 2)]),
        CSRGraph(3, [(0, 1), (1, 2), (0, 2)]),
    ]
    rng = np.random.default_rng(20260726)
    while len(graphs) < count:
        n = int(rng.integers(min_n, max_n + 1))
        family = len(graphs) % 3
        seed = int(rng.integers(2**31 - 1))
        if family == 0:
            graphs.append(random_tree(n, seed))
        else:
            max_m = n * (n - 1) // 2
            lo = n - 1
            hi = max(lo, (n - 1) + (max_m - (n - 1)) // 4)
            if family == 2:
                lo, hi = hi, max_m
            m = int(rng.integers(lo, hi + 1))
            graphs.append(random_connected_gnm(n, m, seed))
    return graphs


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """A fixed 40-vertex connected graph reused by integration tests."""
    return random_connected_gnm(40, 90, seed=12345)


@pytest.fixture(scope="session")
def small_tree() -> CSRGraph:
    """A fixed 12-vertex random tree."""
    return random_tree(12, seed=999)


# ---------------------------------------------------------------------------
# Sanitizers (DESIGN.md §11): fail fast on silent numerics, leaked threads,
# and leaked shared-memory segments.  These are autouse so every test in the
# suite runs hardened — a kernel that divides by zero or a service test that
# forgets to join a worker thread fails *here*, not three PRs later.
# ---------------------------------------------------------------------------

import glob as _glob
import threading as _threading
import time as _time


@pytest.fixture(autouse=True, scope="session")
def _numpy_strict_errors():
    """Promote silent numpy floating-point warnings to hard errors."""
    old = np.seterr(all="raise")
    yield
    np.seterr(**old)


def _lingering_threads() -> "set[_threading.Thread]":
    """Non-daemon threads a test must not leak.

    Daemon threads and the persistent shared pool's executor machinery
    (``_ExecutorManagerThread`` — alive by design between tests) are
    exempt; everything else must be joined by the test that started it.
    """
    allowed_types = {"_ExecutorManagerThread", "QueueFeederThread"}
    return {
        t
        for t in _threading.enumerate()
        if t is not _threading.main_thread()
        and not t.daemon
        and type(t).__name__ not in allowed_types
    }


@pytest.fixture(autouse=True)
def _no_thread_leak():
    """Every test must join the non-daemon threads it starts."""
    before = _lingering_threads()
    yield
    leaked = _lingering_threads() - before
    deadline = _time.monotonic() + 2.0
    while leaked and _time.monotonic() < deadline:
        _time.sleep(0.02)  # grace: threads mid-shutdown when the test ends
        leaked = {t for t in _lingering_threads() - before if t.is_alive()}
    assert not leaked, (
        f"test leaked non-daemon thread(s): {sorted(t.name for t in leaked)}"
    )


@pytest.fixture(autouse=True)
def _no_shm_leak():
    """Every test must release the /dev/shm segments it creates.

    The explicit crash-path checks live in tests/parallel; this autouse
    promotion catches the quiet leaks — a test that maps over a bundle and
    forgets to close it passes its own asserts but fails here.
    """
    before = set(_glob.glob("/dev/shm/repro-shm-*"))
    yield
    leaked = set(_glob.glob("/dev/shm/repro-shm-*")) - before
    deadline = _time.monotonic() + 2.0
    while leaked and _time.monotonic() < deadline:
        _time.sleep(0.02)  # grace: worker detach / finalizer timing
        leaked = set(_glob.glob("/dev/shm/repro-shm-*")) - before
    assert not leaked, f"test leaked shared-memory segment(s): {sorted(leaked)}"
