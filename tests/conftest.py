"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs import CSRGraph, random_connected_gnm, random_tree


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 16):
    """A random connected graph with a deterministic Hypothesis-driven seed."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_connected_gnm(n, m, seed)


@st.composite
def trees(draw, min_n: int = 2, max_n: int = 20):
    """A uniform random labelled tree."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_tree(n, seed)


@st.composite
def edge_lists(draw, max_n: int = 12):
    """A (possibly disconnected) simple graph as (n, edges)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    return n, chosen


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """A fixed 40-vertex connected graph reused by integration tests."""
    return random_connected_gnm(40, 90, seed=12345)


@pytest.fixture(scope="session")
def small_tree() -> CSRGraph:
    """A fixed 12-vertex random tree."""
    return random_tree(12, seed=999)
