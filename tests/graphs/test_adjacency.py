"""Unit tests for the mutable adjacency graph used by dynamics."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidEdgeError
from repro.graphs import AdjacencyGraph, CSRGraph

from ..conftest import connected_graphs


class TestMutation:
    def test_add_and_remove(self):
        g = AdjacencyGraph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.m == 2
        g.remove_edge(0, 1)
        assert g.m == 1
        assert not g.has_edge(0, 1)

    def test_add_duplicate_raises(self):
        g = AdjacencyGraph(3, [(0, 1)])
        with pytest.raises(InvalidEdgeError):
            g.add_edge(1, 0)

    def test_remove_missing_raises(self):
        g = AdjacencyGraph(3)
        with pytest.raises(InvalidEdgeError):
            g.remove_edge(0, 1)

    def test_self_loop_rejected(self):
        g = AdjacencyGraph(3)
        with pytest.raises(InvalidEdgeError):
            g.add_edge(2, 2)


class TestSwapSemantics:
    def test_plain_swap(self):
        g = AdjacencyGraph(4, [(0, 1), (1, 2)])
        g.swap_edge(1, 0, 3)
        assert not g.has_edge(1, 0)
        assert g.has_edge(1, 3)
        assert g.m == 2

    def test_swap_onto_existing_neighbor_is_deletion(self):
        # Paper convention: swapping vw to an existing edge deletes vw.
        g = AdjacencyGraph(4, [(0, 1), (0, 2)])
        g.swap_edge(0, 1, 2)
        assert g.m == 1
        assert not g.has_edge(0, 1)
        assert g.has_edge(0, 2)

    def test_swap_onto_dropped_neighbor_is_deletion(self):
        g = AdjacencyGraph(3, [(0, 1), (0, 2)])
        g.swap_edge(0, 1, 1)
        assert g.m == 1
        assert not g.has_edge(0, 1)

    def test_swap_missing_edge_raises(self):
        g = AdjacencyGraph(4, [(0, 1)])
        with pytest.raises(InvalidEdgeError):
            g.swap_edge(0, 2, 3)

    def test_swap_to_self_raises(self):
        g = AdjacencyGraph(3, [(0, 1)])
        with pytest.raises(InvalidEdgeError):
            g.swap_edge(0, 1, 0)


class TestSnapshots:
    def test_csr_round_trip(self):
        csr = CSRGraph(5, [(0, 1), (1, 2), (3, 4)])
        adj = AdjacencyGraph.from_csr(csr)
        assert adj.to_csr() == csr

    def test_csr_cache_invalidated_on_mutation(self):
        adj = AdjacencyGraph(3, [(0, 1)])
        first = adj.to_csr()
        adj.add_edge(1, 2)
        second = adj.to_csr()
        assert first.m == 1
        assert second.m == 2

    def test_csr_cache_reused_when_clean(self):
        adj = AdjacencyGraph(3, [(0, 1)])
        assert adj.to_csr() is adj.to_csr()

    def test_copy_is_independent(self):
        a = AdjacencyGraph(3, [(0, 1)])
        b = a.copy()
        b.add_edge(1, 2)
        assert a.m == 1
        assert b.m == 2

    def test_neighbors_array_sorted(self):
        adj = AdjacencyGraph(5, [(2, 4), (2, 0)])
        assert adj.neighbors_array(2).tolist() == [0, 4]

    @given(connected_graphs(max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_everything(self, csr):
        adj = AdjacencyGraph.from_csr(csr)
        assert adj.n == csr.n
        assert adj.m == csr.m
        assert adj.edge_set() == csr.edge_set()
        assert adj.to_csr() == csr
