"""Removal-row repair kernel vs the fresh-APSP oracle.

The incremental engine's correctness reduces to one claim: for every edge
``e`` of every graph, :func:`removal_matrix_repair` equals APSP of the
rebuilt graph ``G − e``.  These tests check the claim exhaustively on the
deterministic battery (trees / sparse / dense, so bridges and disconnecting
removals occur by construction), on Hypothesis-driven graphs, and on the
hand-picked degenerate cases, along with the exactness of the affected-source
mask both kernels share.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.costs import lift_distances
from repro.errors import GraphError
from repro.graphs import (
    CSRGraph,
    cycle_graph,
    distance_matrix,
    path_graph,
    removal_affected_sources,
    removal_matrix_repair,
    repair_row_after_removal,
    star_graph,
)
from repro.graphs.repair import _BATCH_THRESHOLD, _batched_removal_rows

from ..conftest import connected_graphs, edge_lists, graph_battery

BATTERY = graph_battery()


def _oracle(g: CSRGraph, edge) -> np.ndarray:
    return lift_distances(distance_matrix(g.with_edges(remove=[edge])))


class TestBatteryCrossValidation:
    def test_battery_is_large_enough(self):
        assert len(BATTERY) >= 200

    @pytest.mark.parametrize("idx", range(len(BATTERY)))
    def test_every_edge_removal_matches_oracle(self, idx):
        g = BATTERY[idx]
        base = lift_distances(distance_matrix(g))
        for edge in g.iter_edges():
            oracle = _oracle(g, edge)
            fast = removal_matrix_repair(g, base, edge)
            assert np.array_equal(fast, oracle), (g.edges().tolist(), edge)

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 4))
    def test_affected_mask_is_exact(self, idx):
        g = BATTERY[idx]
        base = lift_distances(distance_matrix(g))
        for edge in g.iter_edges():
            mask = removal_affected_sources(g, base, edge)
            truth = (_oracle(g, edge) != base).any(axis=1)
            assert np.array_equal(mask, truth), (g.edges().tolist(), edge)


class TestHypothesisFuzz:
    @given(connected_graphs(min_n=2, max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_random_graph_random_edges(self, g):
        base = lift_distances(distance_matrix(g))
        for edge in list(g.iter_edges())[:6]:
            assert np.array_equal(
                removal_matrix_repair(g, base, edge), _oracle(g, edge)
            )

    @given(edge_lists(max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_disconnected_base_graphs(self, ne):
        # The kernel must also be exact when the *base* graph is already
        # disconnected (rows with infinite entries).
        n, edges = ne
        g = CSRGraph(n, edges)
        base = lift_distances(distance_matrix(g))
        for edge in g.iter_edges():
            assert np.array_equal(
                removal_matrix_repair(g, base, edge), _oracle(g, edge)
            )


class TestStructuredCases:
    def test_bridge_fast_path_on_paths(self):
        g = path_graph(9)
        base = lift_distances(distance_matrix(g))
        for edge in g.iter_edges():
            assert np.array_equal(
                removal_matrix_repair(g, base, edge), _oracle(g, edge)
            )

    def test_star_leaf_removal(self):
        g = star_graph(8)
        base = lift_distances(distance_matrix(g))
        assert np.array_equal(
            removal_matrix_repair(g, base, (0, 3)), _oracle(g, (0, 3))
        )

    def test_cycle_uses_batched_path(self):
        # Removing a cycle edge affects most sources, well past the batch
        # threshold, so this exercises _batched_removal_rows end to end.
        g = cycle_graph(12)
        base = lift_distances(distance_matrix(g))
        edge = (0, 11)
        affected = removal_affected_sources(g, base, edge)
        assert int(affected.sum()) > _BATCH_THRESHOLD
        assert np.array_equal(
            removal_matrix_repair(g, base, edge), _oracle(g, edge)
        )

    def test_batched_rows_directly(self):
        g = cycle_graph(10)
        sources = np.asarray([0, 3, 7])
        rows = _batched_removal_rows(g, 0, 9, sources)
        oracle = _oracle(g, (0, 9))
        assert np.array_equal(rows, oracle[sources])

    def test_single_row_repair_matches(self):
        g = cycle_graph(8).with_edges(add=[(0, 4)])
        base = lift_distances(distance_matrix(g))
        for edge in g.iter_edges():
            mask = removal_affected_sources(g, base, edge)
            for s in np.nonzero(mask)[0]:
                row = repair_row_after_removal(g, edge, base[s])
                assert np.array_equal(row, _oracle(g, edge)[s])

    def test_unaffected_row_returned_as_copy(self):
        g = cycle_graph(6).with_edges(add=[(0, 3)])
        base = lift_distances(distance_matrix(g))
        mask = removal_affected_sources(g, base, (0, 3))
        quiet = np.nonzero(~mask)[0]
        assert quiet.size  # the chord is redundant for some sources
        row = repair_row_after_removal(g, (0, 3), base[quiet[0]])
        assert np.array_equal(row, base[quiet[0]])
        assert row is not base[quiet[0]]

    def test_tiny_graphs(self):
        for g in (CSRGraph(2, [(0, 1)]), CSRGraph(3, [(0, 1), (1, 2)])):
            base = lift_distances(distance_matrix(g))
            for edge in g.iter_edges():
                assert np.array_equal(
                    removal_matrix_repair(g, base, edge), _oracle(g, edge)
                )

    def test_high_degree_hub_batched_no_overflow(self):
        # Regression: the batched BFS once used int8 frontier accumulators,
        # which wrap when >= 128 frontier vertices share an unvisited
        # neighbour — the hub was never settled and its distances corrupted.
        leaves = list(range(4, 154))  # 150 leaves, all adjacent to b and h
        hub = 154
        chain = list(range(155, 165))  # pushes the affected set past batching
        edges = [(0, 1), (0, 2), (2, 3), (3, 1)]  # a=0, b=1 + alternate path
        edges += [(1, leaf) for leaf in leaves]
        edges += [(hub, leaf) for leaf in leaves]
        edges += [(0, chain[0])]
        edges += list(zip(chain, chain[1:]))
        g = CSRGraph(165, edges)
        base = lift_distances(distance_matrix(g))
        affected = removal_affected_sources(g, base, (0, 1))
        assert int(affected.sum()) > _BATCH_THRESHOLD
        assert np.array_equal(
            removal_matrix_repair(g, base, (0, 1)), _oracle(g, (0, 1))
        )

    def test_missing_edge_rejected(self):
        g = path_graph(4)
        base = lift_distances(distance_matrix(g))
        with pytest.raises(GraphError):
            removal_matrix_repair(g, base, (0, 3))
