"""Graph power tests: the exact ceil-distance law of Theorem 13."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs import (
    CSRGraph,
    cycle_graph,
    distance_matrix,
    path_graph,
    power_distance_matrix,
    power_graph,
)

from ..conftest import connected_graphs


class TestPowerGraph:
    def test_power_one_is_identity(self):
        g = cycle_graph(7)
        assert power_graph(g, 1) == g

    def test_power_at_diameter_is_complete(self):
        g = path_graph(5)
        p = power_graph(g, 4)
        assert p.m == 5 * 4 // 2

    def test_square_of_path(self):
        g = path_graph(4)
        p = power_graph(g, 2)
        assert p.edge_set() == frozenset(
            {(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)}
        )

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            power_graph(path_graph(3), 0)

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            power_graph(CSRGraph(3, [(0, 1)]), 2)


class TestCeilLaw:
    @given(connected_graphs(max_n=12), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_power_distances_match_explicit_bfs(self, g, x):
        # The paper's law: d_{G^x}(u,v) = ceil(d_G(u,v) / x).
        direct = power_distance_matrix(g, x)
        explicit = distance_matrix(power_graph(g, x))
        assert np.array_equal(direct, explicit)

    def test_ceil_values(self):
        g = path_graph(7)  # distances 0..6 from vertex 0
        dm3 = power_distance_matrix(g, 3)
        assert dm3[0].tolist() == [0, 1, 1, 1, 2, 2, 2]

    def test_diameter_shrinks_by_factor_x(self):
        g = cycle_graph(24)  # diameter 12
        for x in (2, 3, 4, 6):
            assert power_distance_matrix(g, x).max() == -(-12 // x)
