"""Unit tests for the CSR graph core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, InvalidEdgeError
from repro.graphs import CSRGraph

from ..conftest import edge_lists


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph(0, [])
        assert g.n == 0
        assert g.m == 0

    def test_isolated_vertices(self):
        g = CSRGraph(5, [])
        assert g.n == 5
        assert g.m == 0
        assert g.degrees().tolist() == [0] * 5

    def test_single_edge(self):
        g = CSRGraph(2, [(0, 1)])
        assert g.m == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_edge_orientation_is_irrelevant(self):
        a = CSRGraph(3, [(0, 1), (1, 2)])
        b = CSRGraph(3, [(1, 0), (2, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_edges_are_canonical_and_sorted(self):
        g = CSRGraph(4, [(3, 1), (2, 0), (1, 0)])
        assert g.edges().tolist() == [[0, 1], [0, 2], [1, 3]]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(-1, [])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidEdgeError):
            CSRGraph(3, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(InvalidEdgeError):
            CSRGraph(3, [(0, 1), (1, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InvalidEdgeError):
            CSRGraph(3, [(0, 3)])
        with pytest.raises(InvalidEdgeError):
            CSRGraph(3, [(-1, 0)])


class TestAccessors:
    def test_neighbors_sorted(self):
        g = CSRGraph(5, [(2, 4), (2, 0), (2, 3)])
        assert g.neighbors(2).tolist() == [0, 3, 4]

    def test_degree_matches_neighbors(self):
        g = CSRGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_degrees_vector(self):
        g = CSRGraph(4, [(0, 1), (2, 3)])
        assert g.degrees().tolist() == [1, 1, 1, 1]

    def test_has_edge_false_for_self(self):
        g = CSRGraph(3, [(0, 1)])
        assert not g.has_edge(1, 1)

    def test_vertex_range_checked(self):
        g = CSRGraph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.degree(3)
        with pytest.raises(GraphError):
            g.neighbors(-1)

    def test_edge_set_round_trip(self):
        edges = {(0, 1), (1, 2), (0, 3)}
        g = CSRGraph(4, edges)
        assert g.edge_set() == frozenset(edges)

    def test_iter_edges_yields_python_ints(self):
        g = CSRGraph(3, [(0, 2)])
        (edge,) = list(g.iter_edges())
        assert edge == (0, 2)
        assert all(type(x) is int for x in edge)


class TestWithEdges:
    def test_add_edge(self):
        g = CSRGraph(3, [(0, 1)])
        g2 = g.with_edges(add=[(1, 2)])
        assert g2.m == 2
        assert g.m == 1  # immutability

    def test_remove_edge(self):
        g = CSRGraph(3, [(0, 1), (1, 2)])
        g2 = g.with_edges(remove=[(1, 2)])
        assert g2.m == 1
        assert not g2.has_edge(1, 2)

    def test_swap_via_with_edges(self):
        g = CSRGraph(4, [(0, 1), (1, 2)])
        g2 = g.with_edges(add=[(0, 3)], remove=[(0, 1)])
        assert g2.has_edge(0, 3) and not g2.has_edge(0, 1)

    def test_remove_missing_raises(self):
        g = CSRGraph(3, [(0, 1)])
        with pytest.raises(InvalidEdgeError):
            g.with_edges(remove=[(1, 2)])

    def test_add_existing_raises(self):
        g = CSRGraph(3, [(0, 1)])
        with pytest.raises(InvalidEdgeError):
            g.with_edges(add=[(1, 0)])

    def test_remove_then_add_same_edge(self):
        g = CSRGraph(3, [(0, 1)])
        g2 = g.with_edges(add=[(0, 1)], remove=[(0, 1)])
        assert g2 == g


class TestScipyBridge:
    def test_to_scipy_shape_and_symmetry(self):
        g = CSRGraph(4, [(0, 1), (1, 2), (2, 3)])
        mat = g.to_scipy()
        assert mat.shape == (4, 4)
        dense = mat.toarray()
        assert (dense == dense.T).all()
        assert dense.sum() == 2 * g.m


class TestCSRInvariants:
    @given(edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_indptr_indices_consistency(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        assert g.indptr.shape == (n + 1,)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == 2 * g.m
        assert (np.diff(g.indptr) >= 0).all()
        # Adjacency symmetric: u in N(v) iff v in N(u).
        for u, v in g.iter_edges():
            assert v in g.neighbors(u)
            assert u in g.neighbors(v)

    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_is_twice_edges(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        assert int(g.degrees().sum()) == 2 * g.m

    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_equality_independent_of_edge_order(self, nl):
        n, edges = nl
        g1 = CSRGraph(n, edges)
        g2 = CSRGraph(n, list(reversed([(v, u) for u, v in edges])))
        assert g1 == g2
        assert hash(g1) == hash(g2)
