"""Generator tests: structure of deterministic families, sampling laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    all_trees,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    is_connected,
    path_graph,
    prufer_to_tree,
    random_connected_gnm,
    random_tree,
    star_graph,
)
from repro.theory import is_tree


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.degrees().tolist() == [1, 2, 2, 2, 1]

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.m == 5
        assert set(g.degrees().tolist()) == {2}

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_center_choice(self):
        g = star_graph(5, center=2)
        assert g.degree(2) == 4
        assert g.degree(0) == 1

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert set(g.degrees().tolist()) == {5}

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.m == 6
        assert sorted(g.degrees().tolist()) == [2, 2, 2, 3, 3]

    def test_grid(self):
        g = grid_graph(2, 3)
        assert g.n == 6
        assert g.m == 7  # 2*2 vertical + 3*1... rows*(cols-1) + cols*(rows-1)

    def test_empty(self):
        g = empty_graph(4)
        assert g.m == 0


class TestPrufer:
    def test_known_decoding(self):
        # Sequence (3, 3) on n=4: edges (0,3), (1,3), (2,3) — the star at 3.
        g = prufer_to_tree([3, 3], 4)
        assert g.edge_set() == frozenset({(0, 3), (1, 3), (2, 3)})

    def test_wrong_length_rejected(self):
        with pytest.raises(GraphError):
            prufer_to_tree([0], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            prufer_to_tree([4, 0], 4)

    @given(st.integers(3, 10), st.data())
    @settings(max_examples=80, deadline=None)
    def test_decoding_always_yields_tree(self, n, data):
        seq = data.draw(
            st.lists(st.integers(0, n - 1), min_size=n - 2, max_size=n - 2)
        )
        g = prufer_to_tree(seq, n)
        assert is_tree(g)

    def test_cayley_formula(self):
        # all_trees enumerates n^(n-2) distinct labelled trees.
        for n, expected in ((2, 1), (3, 3), (4, 16), (5, 125)):
            seen = set()
            for t in all_trees(n):
                assert is_tree(t)
                seen.add(t.edge_set())
            assert len(seen) == expected

    def test_degree_law(self):
        # A label appearing k times in the sequence has degree k+1.
        g = prufer_to_tree([2, 2, 0], 5)
        assert g.degree(2) == 3
        assert g.degree(0) == 2


class TestRandomFamilies:
    @given(st.integers(2, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_tree_is_tree(self, n, seed):
        assert is_tree(random_tree(n, seed))

    def test_random_tree_deterministic(self):
        a = random_tree(15, seed=7)
        b = random_tree(15, seed=7)
        assert a == b

    def test_random_tree_seed_variation(self):
        assert random_tree(15, seed=1) != random_tree(15, seed=2)

    @given(st.integers(3, 20), st.data())
    @settings(max_examples=60, deadline=None)
    def test_gnm_connected_with_exact_m(self, n, data):
        max_m = n * (n - 1) // 2
        m = data.draw(st.integers(n - 1, max_m))
        seed = data.draw(st.integers(0, 2**31 - 1))
        g = random_connected_gnm(n, m, seed)
        assert g.m == m
        assert is_connected(g)

    def test_gnm_dense_path(self):
        # Exercises the complement-enumeration branch (m > 0.75 * max).
        n = 8
        max_m = n * (n - 1) // 2
        g = random_connected_gnm(n, max_m - 1, seed=5)
        assert g.m == max_m - 1
        assert is_connected(g)

    def test_gnm_bounds_checked(self):
        with pytest.raises(GraphError):
            random_connected_gnm(5, 3, seed=0)  # below n-1
        with pytest.raises(GraphError):
            random_connected_gnm(5, 11, seed=0)  # above C(5,2)
