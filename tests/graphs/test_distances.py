"""Distance engine tests: engines agree; closed forms hold."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import DisconnectedGraphError
from repro.graphs import (
    CSRGraph,
    average_distance,
    ball_sizes,
    cycle_graph,
    diameter,
    diameter_or_inf,
    distance_histogram,
    distance_matrix,
    eccentricities,
    grid_graph,
    is_connected,
    path_graph,
    radius,
    sphere_sizes,
    star_graph,
    sum_distances_from,
    total_pairwise_distance,
)

from ..conftest import connected_graphs, edge_lists


class TestEnginesAgree:
    @given(edge_lists(max_n=14))
    @settings(max_examples=60, deadline=None)
    def test_scipy_equals_numpy(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        assert np.array_equal(
            distance_matrix(g, "scipy"), distance_matrix(g, "numpy")
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(Exception):
            distance_matrix(path_graph(3), "quantum")


class TestClosedForms:
    def test_path(self):
        g = path_graph(6)
        assert diameter(g) == 5
        assert radius(g) == 3  # center vertices 2, 3 have ecc 3
        assert eccentricities(g).tolist() == [5, 4, 3, 3, 4, 5]

    def test_cycle(self):
        g = cycle_graph(8)
        assert diameter(g) == 4
        assert radius(g) == 4
        assert set(eccentricities(g).tolist()) == {4}

    def test_star(self):
        g = star_graph(7)
        assert diameter(g) == 2
        assert radius(g) == 1
        assert sum_distances_from(g, 0) == 6
        assert sum_distances_from(g, 1) == 1 + 2 * 5

    def test_grid(self):
        g = grid_graph(3, 4)
        assert diameter(g) == (3 - 1) + (4 - 1)

    def test_total_pairwise_distance_path(self):
        # Wiener index of P_n is C(n+1, 3); ordered total is twice that.
        n = 7
        g = path_graph(n)
        wiener = math.comb(n + 1, 3)
        assert total_pairwise_distance(g) == 2 * wiener

    def test_average_distance_complete(self):
        from repro.graphs import complete_graph

        assert average_distance(complete_graph(5)) == 1.0


class TestDisconnectedBehavior:
    def test_diameter_raises(self):
        g = CSRGraph(4, [(0, 1)])
        with pytest.raises(DisconnectedGraphError):
            diameter(g)

    def test_diameter_or_inf(self):
        g = CSRGraph(4, [(0, 1)])
        assert diameter_or_inf(g) == math.inf
        assert diameter_or_inf(path_graph(4)) == 3.0

    def test_eccentricities_all_unreachable(self):
        from repro.graphs import UNREACHABLE

        g = CSRGraph(3, [(0, 1)])
        assert set(eccentricities(g).tolist()) == {UNREACHABLE}

    def test_sum_distances_inf(self):
        g = CSRGraph(3, [(0, 1)])
        assert sum_distances_from(g, 0) == math.inf

    def test_total_pairwise_inf(self):
        g = CSRGraph(3, [(0, 1)])
        assert total_pairwise_distance(g) == math.inf

    def test_is_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(CSRGraph(3, [(0, 1)]))
        assert is_connected(CSRGraph(1, []))
        assert is_connected(CSRGraph(0, []))


class TestHistogramsAndSpheres:
    def test_histogram_cycle(self):
        g = cycle_graph(6)
        hist = distance_histogram(g)
        # Per vertex: one at distance 0, two each at 1 and 2, one at 3.
        assert hist.tolist() == [6, 12, 12, 6]

    def test_sphere_sizes_path_end(self):
        g = path_graph(5)
        assert sphere_sizes(g, 0).tolist() == [1, 1, 1, 1, 1]

    def test_ball_sizes_cumulative(self):
        g = cycle_graph(6)
        assert ball_sizes(g, 0).tolist() == [1, 3, 5, 6]

    def test_sphere_sizes_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            sphere_sizes(CSRGraph(3, [(0, 1)]), 0)

    @given(connected_graphs(max_n=14))
    @settings(max_examples=40, deadline=None)
    def test_spheres_partition_vertices(self, g):
        for v in (0, g.n - 1):
            assert int(sphere_sizes(g, v).sum()) == g.n

    @given(connected_graphs(max_n=14))
    @settings(max_examples=40, deadline=None)
    def test_diameter_radius_sandwich(self, g):
        # radius <= diameter <= 2 * radius, a metric-space basic.
        r, d = radius(g), diameter(g)
        assert r <= d <= 2 * r
