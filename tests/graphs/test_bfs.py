"""BFS kernel tests: cross-validation against networkx and patch semantics."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    CSRGraph,
    UNREACHABLE,
    bfs_aggregates,
    bfs_distances,
    bfs_tree_parents,
    path_graph,
    star_graph,
    to_networkx,
)

from ..conftest import connected_graphs, edge_lists


class TestBFSBasics:
    def test_path_distances(self):
        g = path_graph(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_distances(g, 2).tolist() == [2, 1, 0, 1, 2]

    def test_star_distances(self):
        g = star_graph(6)
        assert bfs_distances(g, 0).tolist() == [0, 1, 1, 1, 1, 1]
        d = bfs_distances(g, 3)
        assert d[0] == 1 and d[3] == 0
        assert all(d[v] == 2 for v in (1, 2, 4, 5))

    def test_unreachable_marked(self):
        g = CSRGraph(4, [(0, 1)])
        d = bfs_distances(g, 0)
        assert d[2] == UNREACHABLE and d[3] == UNREACHABLE

    def test_source_out_of_range(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), 5)

    @given(edge_lists(max_n=14), st.integers(min_value=0, max_value=13))
    @settings(max_examples=80, deadline=None)
    def test_matches_networkx(self, nl, src):
        n, edges = nl
        src = src % n
        g = CSRGraph(n, edges)
        ours = bfs_distances(g, src)
        ref = nx.single_source_shortest_path_length(to_networkx(g), src)
        for v in range(n):
            expected = ref.get(v, UNREACHABLE)
            assert int(ours[v]) == expected


class TestPatchedBFS:
    def test_exclude_edge(self):
        g = path_graph(4)
        d = bfs_distances(g, 0, exclude=(1, 2))
        assert d.tolist() == [0, 1, UNREACHABLE, UNREACHABLE]

    def test_exclude_missing_edge_is_noop(self):
        g = path_graph(4)
        assert bfs_distances(g, 0, exclude=(0, 3)).tolist() == [0, 1, 2, 3]

    def test_extra_edge(self):
        g = path_graph(5)
        d = bfs_distances(g, 0, extra=[(0, 4)])
        assert d.tolist() == [0, 1, 2, 2, 1]

    def test_extra_self_loop_rejected(self):
        with pytest.raises(GraphError):
            bfs_distances(path_graph(3), 0, extra=[(1, 1)])

    def test_swap_patch_equals_materialized_graph(self):
        g = CSRGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)])
        patched = bfs_distances(g, 0, exclude=(0, 1), extra=[(0, 4)])
        explicit = g.with_edges(add=[(0, 4)], remove=[(0, 1)])
        assert patched.tolist() == bfs_distances(explicit, 0).tolist()

    @given(connected_graphs(max_n=12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_patch_property(self, g, data):
        # Random swap-shaped patch, compared to the materialized graph.
        v = data.draw(st.integers(0, g.n - 1))
        nbrs = [int(x) for x in g.neighbors(v)]
        if not nbrs:
            return
        w = data.draw(st.sampled_from(nbrs))
        w2 = data.draw(st.integers(0, g.n - 1))
        if w2 == v:
            return
        extra = [] if g.has_edge(v, w2) or w2 == w else [(v, w2)]
        patched = bfs_distances(g, v, exclude=(v, w), extra=extra)
        explicit = g.with_edges(remove=[(v, w)], add=extra)
        assert patched.tolist() == bfs_distances(explicit, v).tolist()


class TestAggregates:
    def test_connected_aggregates(self):
        g = path_graph(4)
        total, ecc, reached = bfs_aggregates(g, 0)
        assert (total, ecc, reached) == (6, 3, 4)

    def test_disconnected_aggregates(self):
        g = CSRGraph(4, [(0, 1)])
        total, ecc, reached = bfs_aggregates(g, 0)
        assert reached == 2
        assert (total, ecc) == (1, 1)

    def test_singleton(self):
        g = CSRGraph(1, [])
        assert bfs_aggregates(g, 0) == (0, 0, 1)


class TestBFSTreeParents:
    def test_path_parents(self):
        g = path_graph(4)
        p = bfs_tree_parents(g, 0)
        assert p.tolist() == [0, 0, 1, 2]

    def test_smallest_parent_wins(self):
        # Vertex 3 reachable from both 1 and 2 at the same level.
        g = CSRGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        p = bfs_tree_parents(g, 0)
        assert p[3] == 1

    def test_unreachable_parent(self):
        g = CSRGraph(3, [(0, 1)])
        p = bfs_tree_parents(g, 0)
        assert p[2] == UNREACHABLE

    @given(connected_graphs(max_n=14))
    @settings(max_examples=40, deadline=None)
    def test_parents_consistent_with_distances(self, g):
        d = bfs_distances(g, 0)
        p = bfs_tree_parents(g, 0)
        for v in range(1, g.n):
            assert d[int(p[v])] == d[v] - 1
            assert g.has_edge(v, int(p[v]))
