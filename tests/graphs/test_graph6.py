"""graph6 codec tests (cross-validated against networkx's implementation)."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.errors import GraphError
from repro.graphs import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    empty_graph,
    from_graph6,
    path_graph,
    star_graph,
    to_graph6,
    to_networkx,
)

from ..conftest import edge_lists


class TestKnownEncodings:
    def test_trivial_graphs(self):
        # Reference strings from the format specification.
        assert to_graph6(empty_graph(0)) == "?"
        assert to_graph6(empty_graph(1)) == "@"
        assert to_graph6(CSRGraph(2, [(0, 1)])) == "A_"

    def test_k4(self):
        assert to_graph6(complete_graph(4)) == "C~"

    def test_p4(self):
        # Path 0-1-2-3: the spec's worked example encodes as 'Ch'... verify
        # against networkx instead of hardcoding.
        g = path_graph(4)
        assert to_graph6(g) == nx.to_graph6_bytes(
            to_networkx(g), header=False
        ).decode().strip()


class TestRoundTrip:
    @given(edge_lists(max_n=12))
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        assert from_graph6(to_graph6(g)) == g

    @given(edge_lists(max_n=10))
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx_encoder(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        ref = nx.to_graph6_bytes(to_networkx(g), header=False).decode().strip()
        assert to_graph6(g) == ref

    @given(edge_lists(max_n=10))
    @settings(max_examples=50, deadline=None)
    def test_decodes_networkx_output(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        ref = nx.to_graph6_bytes(to_networkx(g), header=False).decode()
        assert from_graph6(ref) == g

    def test_large_n_prefix(self):
        # n = 100 > 62 exercises the 4-byte size prefix.
        g = star_graph(100)
        assert from_graph6(to_graph6(g)) == g

    def test_header_tolerated(self):
        s = ">>graph6<<" + to_graph6(cycle_graph(5))
        assert from_graph6(s) == cycle_graph(5)


class TestErrors:
    def test_empty_string(self):
        with pytest.raises(GraphError):
            from_graph6("")

    def test_truncated_body(self):
        s = to_graph6(complete_graph(6))
        with pytest.raises(GraphError):
            from_graph6(s[:-1])

    def test_invalid_byte(self):
        with pytest.raises(GraphError):
            from_graph6("\x01")

    def test_eight_byte_sizes_rejected(self):
        with pytest.raises(GraphError):
            from_graph6("~~" + "?" * 10)
