"""Structural property tests: girth, cut vertices, transitivity, etc."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graphs import (
    CSRGraph,
    complete_graph,
    connected_components,
    cut_vertices,
    cycle_graph,
    degree_sequence,
    distance_profiles_identical,
    girth,
    grid_graph,
    is_bipartite,
    is_vertex_transitive,
    neighborhoods_are_independent,
    path_graph,
    star_graph,
    to_networkx,
)
from repro.constructions import rotated_torus

from ..conftest import edge_lists


class TestGirth:
    def test_forest_has_infinite_girth(self):
        assert girth(path_graph(6)) == math.inf
        assert girth(star_graph(5)) == math.inf

    def test_cycles(self):
        for n in (3, 4, 5, 8):
            assert girth(cycle_graph(n)) == n

    def test_complete(self):
        assert girth(complete_graph(5)) == 3

    def test_grid(self):
        assert girth(grid_graph(3, 3)) == 4

    @given(edge_lists(max_n=10))
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        ours = girth(g)
        try:
            ref = nx.girth(to_networkx(g))
        except Exception:  # older networkx without nx.girth
            pytest.skip("networkx girth unavailable")
        assert ours == ref


class TestCutVertices:
    def test_path_interior(self):
        assert cut_vertices(path_graph(5)) == {1, 2, 3}

    def test_star_center(self):
        assert cut_vertices(star_graph(5)) == {0}

    def test_cycle_has_none(self):
        assert cut_vertices(cycle_graph(6)) == set()

    def test_two_triangles_sharing_a_vertex(self):
        g = CSRGraph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
        assert cut_vertices(g) == {2}

    @given(edge_lists(max_n=12))
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        assert cut_vertices(g) == set(nx.articulation_points(to_networkx(g)))


class TestComponents:
    def test_split_graph(self):
        g = CSRGraph(5, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert comps == [[0, 1], [2, 3], [4]]

    def test_connected(self):
        assert connected_components(path_graph(4)) == [[0, 1, 2, 3]]


class TestBipartite:
    def test_even_cycle(self):
        assert is_bipartite(cycle_graph(6))

    def test_odd_cycle(self):
        assert not is_bipartite(cycle_graph(5))

    def test_tree(self):
        assert is_bipartite(star_graph(7))


class TestNeighborhoodIndependence:
    def test_triangle_free(self):
        assert neighborhoods_are_independent(cycle_graph(5))
        assert neighborhoods_are_independent(grid_graph(3, 3))

    def test_triangle(self):
        assert not neighborhoods_are_independent(complete_graph(3))


class TestDegreeSequence:
    def test_star(self):
        assert degree_sequence(star_graph(5)) == (4, 1, 1, 1, 1)


class TestTransitivity:
    def test_cycle_transitive(self):
        assert is_vertex_transitive(cycle_graph(7))

    def test_complete_transitive(self):
        assert is_vertex_transitive(complete_graph(5))

    def test_path_not_transitive(self):
        assert not is_vertex_transitive(path_graph(4))

    def test_torus_transitive(self):
        assert is_vertex_transitive(rotated_torus(3))

    def test_profiles_necessary_condition(self):
        assert distance_profiles_identical(cycle_graph(8))
        assert not distance_profiles_identical(path_graph(4))

    def test_size_guard(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            is_vertex_transitive(cycle_graph(100), max_n=64)

    def test_degree_regular_but_not_transitive(self):
        # Two triangles joined by a perfect matching vs prism... use the
        # smallest regular non-vertex-transitive graph: the 3-regular
        # "twisted" example on 8 vertices. Simpler: K4 minus perfect
        # matching union ... fall back to a known case: the graph formed by
        # a 6-cycle plus one chord is degree-irregular, so instead check a
        # regular graph with differing distance profiles: two disjoint
        # cycles C3+C5 are regular but (being disconnected) have differing
        # profiles -> not transitive.
        g = CSRGraph(
            8,
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 7), (7, 3)],
        )
        assert not distance_profiles_identical(g)
