"""Conversion and I/O tests."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.errors import GraphError
from repro.graphs import (
    CSRGraph,
    from_networkx,
    path_graph,
    read_edge_list,
    relabel_to_integers,
    to_networkx,
    write_edge_list,
)

from ..conftest import edge_lists


class TestNetworkxBridge:
    @given(edge_lists(max_n=12))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        assert from_networkx(to_networkx(g)) == g

    def test_isolated_vertices_preserved(self):
        g = CSRGraph(5, [(0, 1)])
        assert to_networkx(g).number_of_nodes() == 5

    def test_non_contiguous_labels_rejected(self):
        h = nx.Graph()
        h.add_edge("a", "b")
        with pytest.raises(GraphError):
            from_networkx(h)


class TestRelabel:
    def test_sorted_order(self):
        g, index = relabel_to_integers(
            ["c", "a", "b"], [("a", "b"), ("b", "c")]
        )
        assert index == {"a": 0, "b": 1, "c": 2}
        assert g.edge_set() == frozenset({(0, 1), (1, 2)})

    def test_unsortable_labels_first_seen(self):
        labels = [(0, 1), "x"]  # tuple vs str: unsortable together
        g, index = relabel_to_integers(labels, [((0, 1), "x")])
        assert g.m == 1
        assert set(index.values()) == {0, 1}

    def test_unknown_vertex_rejected(self):
        with pytest.raises(GraphError):
            relabel_to_integers(["a"], [("a", "z")])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(GraphError):
            relabel_to_integers(["a", "a"], [])


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        g = path_graph(6)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_header_mismatch_detected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 2\n0 1\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_malformed_line_detected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("3 1\n0 1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    @given(edge_lists(max_n=10))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, tmp_path_factory, nl):
        n, edges = nl
        g = CSRGraph(n, edges)
        path = tmp_path_factory.mktemp("el") / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g
