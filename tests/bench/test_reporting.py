"""Reporting layer tests."""

import math

import pytest

from repro.bench import Table, format_value


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_forms(self):
        assert format_value(2.0) == "2"
        assert format_value(2.5) == "2.5"
        assert format_value(math.inf) == "inf"
        assert format_value(1 / 3) == "0.3333"

    def test_passthrough(self):
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"


class TestTable:
    def make(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(3, True)
        t.add_note("a note")
        return t

    def test_row_arity_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_ascii_contains_everything(self):
        text = self.make().to_ascii()
        assert "== demo ==" in text
        assert "a note" in text
        assert "2.5" in text

    def test_markdown_shape(self):
        md = self.make().to_markdown()
        assert md.count("|") >= 12
        assert "**demo**" in md

    def test_csv_round_trip(self, tmp_path):
        import csv

        path = tmp_path / "t.csv"
        self.make().write_csv(path)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_column_access(self):
        t = self.make()
        assert t.column("a") == [1, 3]
        with pytest.raises(ValueError):
            t.column("zzz")

    def test_from_records(self):
        t = Table.from_records(
            "r", [{"x": 1, "y": 2}, {"x": 3}], columns=["x", "y"]
        )
        assert t.rows == [[1, 2], [3, None]]

    def test_empty_table_renders(self):
        t = Table("empty", ["only"])
        assert "only" in t.to_ascii()
