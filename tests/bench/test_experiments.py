"""Experiment registry tests: structure and headline claims of each table."""

import pytest

from repro.bench import EXPERIMENTS, experiment_ids, run_experiment


class TestRegistry:
    def test_ids_match_design_doc(self):
        assert experiment_ids() == [
            "fig2-double-star",
            "fig3-diameter3",
            "fig4-torus",
            "thm1-sum-trees",
            "thm9-diameter-census",
            "thm12-tradeoff",
            "thm13-uniformity",
            "thm15-cayley",
            "alpha-transfer",
            "poa-diameter",
            "equilibrium-cost",
            "small-census",
            "variant-census",
            "dynamics-census",
            "paper-claims",
        ]

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("nonexistent")


class TestHeadlineClaims:
    """Cheap experiments run at quick scale; key cells asserted."""

    def test_fig3_tables(self):
        tables = run_experiment("fig3-diameter3", "quick")
        main = tables[0]
        rows = {row[0]: row for row in main.rows}
        # The literal Figure 3 fails; the repaired witness passes.
        assert rows["Figure 3 (paper, literal)"][5] is False
        assert rows["repaired witness (this repo)"][5] is True
        assert rows["repaired witness (this repo)"][3] == 3  # diameter
        # Polarity context table: all equilibria.
        assert all(tables[1].column("sum equilibrium"))

    def test_fig4_tables(self):
        tables = run_experiment("fig4-torus", "quick")
        main = tables[0]
        assert all(main.column("max equilibrium"))
        assert all(main.column("deletion-critical"))
        assert all(main.column("insertion-stable"))
        ks = main.column("k")
        diams = main.column("local diam (all vertices)")
        assert diams == ks  # diameter == k == sqrt(n/2) exactly
        contrast = tables[1]
        assert contrast.rows[0][2] is False  # standard torus not critical

    def test_thm12_tables(self):
        tables = run_experiment("thm12-tradeoff", "quick")
        main = tables[0]
        assert all(main.column("deletion-critical"))
        assert all(main.column("stable k=d-1 insertions"))
        # diameter == k(side) for every instance.
        assert main.column("diameter") == main.column("k(side)")

    def test_thm13_tables(self):
        tables = run_experiment("thm13-uniformity", "quick")
        skew = tables[1]
        # Every measured skew fraction is far below the 4/p bound.
        for frac, bound in zip(skew.column("skew fraction"), skew.column("4/p bound")):
            assert float(frac) < float(bound)
        spider = tables[2]
        for row in spider.rows:
            pairwise = float(row[4].split()[0])
            per_vertex = float(row[5])
            assert per_vertex > pairwise  # the separation

    def test_thm15_tables(self):
        (table,) = run_experiment("thm15-cayley", "quick")
        assert all(
            x in (True, "-") for x in table.column("within bound")
        )
        assert all(x in (True, "-") for x in table.column("plunnecke ok"))

    def test_poa_table(self):
        (table,) = run_experiment("poa-diameter", "quick")
        ratios = [float(x) for x in table.column("PoA / diameter")]
        # The constant-factor band: all ratios within a decade.
        assert max(ratios) / min(ratios) < 10

    def test_alpha_transfer_table(self):
        (table,) = run_experiment("alpha-transfer", "quick")
        assert all(table.column("all within bound"))

    def test_equilibrium_cost_tables(self):
        tables = run_experiment("equilibrium-cost", "quick")
        assert len(tables) == 2
        for col in ("repair seconds", "batched seconds"):
            secs = [float(x) for x in tables[0].column(col)]
            assert all(s > 0 for s in secs)

    def test_variant_census_table(self):
        (table,) = run_experiment("variant-census", "quick")
        objectives = set(table.column("objective"))
        # Base objectives plus both variant families reach the census.
        assert {"sum", "max"} <= objectives
        assert any(o.startswith("interest-") for o in objectives)
        assert any(o.startswith("budget-") for o in objectives)
        # Converged endpoints pass the model-aware audit: wherever runs
        # converged, the verified count matches.
        for row in table.rows:
            assert row[4] == row[3]  # "#verified eq" == "#converged"
