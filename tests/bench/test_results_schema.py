"""Schema guard for the committed ``results/checker_scaling.json`` trajectory.

The file is a per-PR history: every PR's bench run appends one labelled
entry, and downstream tooling (DESIGN.md tables, CI artifacts) parses it.
This guard keeps the trajectory parseable as PRs accumulate — a bench-side
refactor that silently changes the layout fails here, in the tier-1 suite,
instead of at the next overnight bench run.
"""

import json
import numbers
from pathlib import Path

import pytest

RESULTS = Path(__file__).resolve().parents[2] / "results"

#: arm name -> keys every row of that arm must carry (superset allowed).
ARM_REQUIRED_KEYS = {
    "audit": {"n", "m"},
    "workers": {"n", "workers"},
    "fleet": {"n", "workers"},
    "dynamics": {"n", "speedup"},
    "dynamics_batched": {"n", "family", "speedup"},
    "verify_sweep": {"n", "speedup"},
    "variants": {"n", "objective"},
    "trajfleet": {"n", "workers"},
    "service": {"n", "queries_per_sec", "cache_hit_rate"},
}

#: entries from this PR on must record the host's core count (fleet and
#: worker-scaling rows are uninterpretable without it).
CPU_COUNT_REQUIRED_FROM = "pr5-dynamics-batched"


def _load():
    path = RESULTS / "checker_scaling.json"
    if not path.exists():
        pytest.skip("no committed checker_scaling.json trajectory")
    return json.loads(path.read_text()), path


def test_trajectory_parses_with_history_layout():
    data, path = _load()
    assert isinstance(data, dict) and "history" in data, path
    history = data["history"]
    assert isinstance(history, list) and history, "empty trajectory"


def test_every_entry_is_labelled_and_unique():
    data, _ = _load()
    labels = [entry.get("label") for entry in data["history"]]
    assert all(isinstance(label, str) and label for label in labels)
    assert len(labels) == len(set(labels)), f"duplicate PR labels: {labels}"


def test_arm_rows_carry_required_numeric_keys():
    data, _ = _load()
    for entry in data["history"]:
        for arm, required in ARM_REQUIRED_KEYS.items():
            rows = entry.get(arm, [])
            assert isinstance(rows, list), (entry["label"], arm)
            for row in rows:
                missing = required - set(row)
                assert not missing, (entry["label"], arm, missing)
                assert isinstance(row["n"], numbers.Integral), (
                    entry["label"], arm, row
                )


def test_timings_are_finite_nonnegative_numbers():
    data, _ = _load()
    for entry in data["history"]:
        for arm, rows in entry.items():
            if not isinstance(rows, list):
                continue
            for row in rows:
                for key, value in row.items():
                    if key.endswith("_sec") and value is not None:
                        assert isinstance(value, numbers.Real), (arm, row)
                        assert value >= 0, (arm, row)
                    if key.endswith("_rate") and value is not None:
                        assert isinstance(value, numbers.Real), (arm, row)
                        assert 0.0 <= value <= 1.0, (arm, row)


def test_cpu_count_recorded_from_pr5_on():
    data, _ = _load()
    labels = [entry.get("label") for entry in data["history"]]
    if CPU_COUNT_REQUIRED_FROM not in labels:
        pytest.skip("trajectory predates the dynamics-batched arm")
    for entry in data["history"][labels.index(CPU_COUNT_REQUIRED_FROM):]:
        assert isinstance(entry.get("cpu_count"), numbers.Integral), (
            entry["label"]
        )


def test_smoke_file_when_present_has_same_layout():
    path = RESULTS / "checker_scaling_smoke.json"
    if not path.exists():
        pytest.skip("no smoke trajectory on disk")
    data = json.loads(path.read_text())
    assert isinstance(data, dict) and isinstance(data.get("history"), list)
