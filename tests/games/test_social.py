"""Social cost / optimum / PoA tests."""

import itertools
import math

import pytest

from repro.errors import GraphError
from repro.games import (
    alpha_social_cost,
    alpha_social_optimum,
    clique_social_cost,
    poa_diameter_ratio,
    price_of_anarchy_alpha,
    star_plus_matching_graph,
    star_social_cost,
    usage_optimum_same_budget,
    usage_social_cost,
)
from repro.graphs import (
    CSRGraph,
    complete_graph,
    is_connected,
    path_graph,
    star_graph,
    total_pairwise_distance,
)


class TestClosedForms:
    def test_star_formula_matches_direct(self):
        for n in (3, 5, 8):
            g = star_graph(n)
            for alpha in (0.5, 2.0, 7.0):
                assert star_social_cost(n, alpha) == alpha_social_cost(g, alpha)

    def test_clique_formula_matches_direct(self):
        for n in (3, 5, 7):
            g = complete_graph(n)
            for alpha in (0.5, 2.0):
                assert clique_social_cost(n, alpha) == alpha_social_cost(
                    g, alpha
                )

    def test_crossover_at_alpha_2(self):
        n = 6
        assert clique_social_cost(n, 1.0) < star_social_cost(n, 1.0)
        assert clique_social_cost(n, 2.0) == star_social_cost(n, 2.0)
        assert clique_social_cost(n, 3.0) > star_social_cost(n, 3.0)

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0, 3.0, 10.0])
    def test_optimum_verified_by_brute_force_n5(self, alpha):
        n = 5
        pairs = list(itertools.combinations(range(n), 2))
        best = math.inf
        for r in range(n - 1, len(pairs) + 1):
            for es in itertools.combinations(pairs, r):
                g = CSRGraph(n, es)
                if is_connected(g):
                    best = min(best, alpha_social_cost(g, alpha))
        assert alpha_social_optimum(n, alpha) == pytest.approx(best)


class TestUsageCost:
    def test_usage_is_ordered_pair_total(self):
        g = path_graph(5)
        assert usage_social_cost(g) == total_pairwise_distance(g)

    def test_star_plus_matching_budget(self):
        g = star_plus_matching_graph(8, 10)
        assert g.n == 8 and g.m == 10
        assert is_connected(g)

    def test_star_plus_matching_validates(self):
        with pytest.raises(GraphError):
            star_plus_matching_graph(5, 3)

    def test_baseline_improves_with_budget(self):
        # More edges => weakly smaller usage optimum.
        costs = [usage_optimum_same_budget(10, m) for m in (9, 15, 25, 45)]
        assert costs == sorted(costs, reverse=True)


class TestPoA:
    def test_poa_one_for_optimal_equilibria(self):
        # The star is the usage optimum at its own budget.
        poa, d, ratio = poa_diameter_ratio(star_graph(12))
        assert poa == pytest.approx(1.0)
        assert d == 2

    def test_alpha_poa_requires_graphs(self):
        with pytest.raises(GraphError):
            price_of_anarchy_alpha([], 2.0)

    def test_alpha_poa_of_star_is_one_at_alpha_2(self):
        assert price_of_anarchy_alpha([star_graph(8)], 2.0) == pytest.approx(
            1.0
        )

    def test_mixed_sizes_rejected(self):
        with pytest.raises(GraphError):
            price_of_anarchy_alpha([star_graph(5), star_graph(6)], 1.0)

    def test_poa_at_least_one(self):
        from repro.constructions import rotated_torus

        poa, d, ratio = poa_diameter_ratio(rotated_torus(4))
        assert poa >= 1.0
        assert ratio > 0
