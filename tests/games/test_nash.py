"""Nash / greedy equilibrium tests for the α-game."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.games import (
    EXACT_NASH_MAX_N,
    FabrikantGame,
    exact_best_response,
    greedy_best_move,
    greedy_dynamics,
    is_greedy_equilibrium,
    is_nash_equilibrium,
    profile_from_graph,
    random_profile,
)
from repro.graphs import path_graph, star_graph


class TestExactNash:
    def test_star_nash_for_moderate_alpha(self):
        # Classical: the star (bought by the center) is Nash for alpha >= 1.
        for alpha in (1.0, 2.0, 10.0):
            game = FabrikantGame(5, alpha)
            prof = profile_from_graph(star_graph(5))
            assert is_nash_equilibrium(game, prof)

    def test_star_not_nash_for_tiny_alpha(self):
        # alpha < 1: a leaf buys an edge to another leaf (cost alpha,
        # saves 1 distance unit).
        game = FabrikantGame(5, 0.5)
        prof = profile_from_graph(star_graph(5))
        assert not is_nash_equilibrium(game, prof)

    def test_exact_best_response_brute_force_agreement(self):
        # Cross-check the enumeration against a literal subset loop.
        game = FabrikantGame(5, 1.5)
        prof = profile_from_graph(path_graph(5))
        v = 0
        strategy, cost = exact_best_response(game, prof, v)
        others = [u for u in range(5) if u != v]
        best = min(
            game.player_cost(
                game.with_strategy(prof, v, frozenset(combo)), v
            )
            for r in range(len(others) + 1)
            for combo in itertools.combinations(others, r)
        )
        assert cost == best

    def test_size_cap_enforced(self):
        game = FabrikantGame(EXACT_NASH_MAX_N + 1, 1.0)
        prof = tuple(frozenset() for _ in range(game.n))
        with pytest.raises(ConfigurationError):
            exact_best_response(game, prof, 0)


class TestGreedyEquilibrium:
    def test_nash_implies_greedy(self):
        game = FabrikantGame(6, 2.0)
        prof = profile_from_graph(star_graph(6))
        assert is_nash_equilibrium(game, prof)
        assert is_greedy_equilibrium(game, prof)

    def test_greedy_move_improves(self):
        game = FabrikantGame(6, 1.0)
        prof = profile_from_graph(path_graph(6))
        move = greedy_best_move(game, prof, 0)
        assert move is not None
        new_strategy, cost = move
        assert cost < game.player_cost(prof, 0)

    def test_no_move_at_equilibrium(self):
        game = FabrikantGame(6, 2.0)
        prof = profile_from_graph(star_graph(6))
        assert all(
            greedy_best_move(game, prof, v) is None for v in range(6)
        )


class TestGreedyDynamics:
    def test_converges_to_greedy_equilibrium(self):
        game = FabrikantGame(8, 2.0)
        result = greedy_dynamics(game, random_profile(8, 2, seed=4), seed=1)
        assert result.converged
        assert is_greedy_equilibrium(game, result.profile)

    def test_deterministic(self):
        game = FabrikantGame(7, 1.5)
        init = random_profile(7, 2, seed=9)
        a = greedy_dynamics(game, init, seed=2)
        b = greedy_dynamics(game, init, seed=2)
        assert a.profile == b.profile
        assert a.steps == b.steps

    def test_small_alpha_builds_clique(self):
        game = FabrikantGame(6, 0.5)
        result = greedy_dynamics(game, random_profile(6, 1, seed=3), seed=5)
        assert result.converged
        g = game.graph_of(result.profile)
        from repro.graphs import diameter

        assert diameter(g) == 1  # alpha < 1: direct edges always pay

    def test_large_alpha_stays_sparse(self):
        game = FabrikantGame(8, 50.0)
        result = greedy_dynamics(game, random_profile(8, 2, seed=6), seed=7)
        assert result.converged
        g = game.graph_of(result.profile)
        # Edges are expensive: the equilibrium graph is tree-like.
        assert g.m <= 12
