"""Transfer principle tests: owner-restricted swap stability."""

from repro.games import (
    FabrikantGame,
    owner_swap_stable,
    profile_from_graph,
    transfer_sweep,
)
from repro.graphs import path_graph, star_graph


class TestOwnerSwapStability:
    def test_star_profile_stable(self):
        game = FabrikantGame(6, 1.0)
        prof = profile_from_graph(star_graph(6))
        assert owner_swap_stable(game, prof)

    def test_path_profile_unstable(self):
        # The first player relocating its edge toward the path's middle
        # strictly improves its usage.
        game = FabrikantGame(6, 1.0)
        prof = profile_from_graph(path_graph(6))
        assert not owner_swap_stable(game, prof)

    def test_nash_implies_owner_swap_stable(self):
        from repro.games import is_nash_equilibrium

        game = FabrikantGame(6, 2.0)
        prof = profile_from_graph(star_graph(6))
        assert is_nash_equilibrium(game, prof)
        assert owner_swap_stable(game, prof)


class TestTransferSweep:
    def test_records_and_bound(self):
        records = transfer_sweep(
            8, alphas=[1.0, 4.0], replicates=2, root_seed=5
        )
        assert len(records) == 4
        for r in records:
            assert r.n == 8
            if r.converged:
                # The paper's transfer: every alpha-equilibrium we reach is
                # owner-swap stable and within the alpha-free bound.
                assert r.connected
                assert r.owner_swap_stable
                assert r.within_bound

    def test_deterministic(self):
        a = transfer_sweep(7, alphas=[2.0], replicates=2, root_seed=1)
        b = transfer_sweep(7, alphas=[2.0], replicates=2, root_seed=1)
        assert [r.diameter for r in a] == [r.diameter for r in b]
