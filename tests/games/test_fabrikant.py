"""α-game model tests."""

import math

import pytest

from repro.errors import ConfigurationError, GraphError
from repro.games import FabrikantGame, profile_from_graph, random_profile
from repro.graphs import path_graph, star_graph


class TestProfiles:
    def test_normalize_validates(self):
        game = FabrikantGame(3, 1.0)
        with pytest.raises(ConfigurationError):
            game.normalize([{0}, set(), set()])  # self-loop by player 0
        with pytest.raises(ConfigurationError):
            game.normalize([{5}, set(), set()])  # out of range
        with pytest.raises(ConfigurationError):
            game.normalize([set(), set()])  # wrong length

    def test_profile_from_graph_default_owner(self):
        prof = profile_from_graph(path_graph(3))
        assert prof[0] == frozenset({1})
        assert prof[1] == frozenset({2})
        assert prof[2] == frozenset()

    def test_profile_from_graph_custom_owner(self):
        prof = profile_from_graph(path_graph(3), owners={(0, 1): 1, (1, 2): 1})
        assert prof[1] == frozenset({0, 2})

    def test_profile_bad_owner_rejected(self):
        with pytest.raises(GraphError):
            profile_from_graph(path_graph(3), owners={(0, 1): 2})

    def test_random_profile_shape(self):
        prof = random_profile(6, 2, seed=1)
        assert len(prof) == 6
        assert all(len(s) == 2 for s in prof)

    def test_random_profile_bounds(self):
        with pytest.raises(ConfigurationError):
            random_profile(4, 4, seed=0)


class TestCosts:
    def test_star_center_cost(self):
        game = FabrikantGame(5, 2.0)
        prof = profile_from_graph(star_graph(5))  # center 0 buys all
        # Center: 4 edges * alpha + sum of distances (4).
        assert game.player_cost(prof, 0) == 2.0 * 4 + 4
        # Leaf: buys nothing, usage 1 + 2*3.
        assert game.player_cost(prof, 1) == 7

    def test_disconnected_cost_inf(self):
        game = FabrikantGame(3, 1.0)
        prof = game.normalize([{1}, set(), set()])
        assert game.player_cost(prof, 0) == math.inf

    def test_total_cost_decomposition(self):
        from repro.graphs import total_pairwise_distance

        game = FabrikantGame(5, 3.0)
        prof = profile_from_graph(star_graph(5))
        g = game.graph_of(prof)
        assert game.total_cost(prof) == 3.0 * g.m + total_pairwise_distance(g)

    def test_double_buying_costs_twice(self):
        game = FabrikantGame(2, 5.0)
        prof = game.normalize([{1}, {0}])
        # One undirected edge, both players paid for it.
        assert game.graph_of(prof).m == 1
        assert game.total_cost(prof) == 2 * 5.0 + 2

    def test_with_strategy_replaces(self):
        game = FabrikantGame(4, 1.0)
        prof = profile_from_graph(star_graph(4))
        prof2 = game.with_strategy(prof, 1, {2, 3})
        assert prof2[1] == frozenset({2, 3})
        assert prof2[0] == prof[0]

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            FabrikantGame(4, -1.0)
        with pytest.raises(ConfigurationError):
            FabrikantGame(0, 1.0)
