"""Cross-module integration tests: whole-pipeline behaviours.

These exercise the library the way the experiments do — dynamics feeding
auditors feeding analysis — asserting the paper-level invariants that no
single module owns.
"""

import math

import pytest

from repro.analysis import distance_uniformity, theorem13_transform
from repro.constructions import (
    polarity_graph,
    repaired_diameter3_witness,
    rotated_torus,
)
from repro.core import (
    SwapDynamics,
    is_max_equilibrium,
    is_sum_equilibrium,
    run_census,
    sum_equilibrium_gap,
)
from repro.games import (
    FabrikantGame,
    greedy_dynamics,
    owner_swap_stable,
    profile_from_graph,
    random_profile,
)
from repro.graphs import (
    diameter,
    eccentricities,
    random_connected_gnm,
    random_tree,
)
from repro.theory import (
    corollary11_holds,
    lemma2_holds,
    lemma3_holds,
    lemma10_holds,
)


class TestDynamicsToAudit:
    """Graphs produced by dynamics must satisfy everything the paper says
    about equilibria."""

    def test_sum_endpoints_satisfy_lemma10_and_cor11(self):
        for seed in (1, 2):
            g0 = random_connected_gnm(20, 30, seed=seed)
            res = SwapDynamics(objective="sum", seed=seed).run(g0)
            assert res.converged
            g = res.graph
            assert is_sum_equilibrium(g)
            assert sum_equilibrium_gap(g) == 0.0
            assert lemma10_holds(g, 0) is not None
            assert corollary11_holds(g)

    def test_max_endpoints_satisfy_lemma2_and_lemma3(self):
        for seed in (3, 4):
            g0 = random_connected_gnm(14, 20, seed=seed)
            res = SwapDynamics(objective="max", seed=seed).run(g0)
            if not res.converged:
                continue
            g = res.graph
            assert is_max_equilibrium(g)
            assert lemma2_holds(g)
            assert lemma3_holds(g)

    def test_census_diameters_below_theorem9_curve(self):
        from repro.analysis import theorem9_diameter_bound

        records = run_census([12, 20], families=("tree", "sparse"),
                             replicates=2, root_seed=17)
        for r in records:
            if r.converged:
                assert r.diameter_final <= theorem9_diameter_bound(r.n)


class TestEquilibriumZoo:
    """Every equilibrium family in the paper, all auditors at once."""

    @pytest.mark.parametrize(
        "factory,kind",
        [
            (lambda: polarity_graph(3), "sum"),
            (lambda: repaired_diameter3_witness(), "sum"),
            (lambda: rotated_torus(3), "max"),
        ],
    )
    def test_families(self, factory, kind):
        g = factory()
        if kind == "sum":
            assert is_sum_equilibrium(g)
        else:
            assert is_max_equilibrium(g)
            assert lemma2_holds(g)
            assert lemma3_holds(g)


class TestAlphaGameBridge:
    def test_alpha_equilibria_are_owner_swap_stable_for_all_alpha(self):
        # The uniform-treatment claim, end to end: for a spread of alpha
        # spanning both optimum regimes, greedy equilibria pass the
        # owner-restricted swap audit (the basic game's move).
        for alpha in (0.5, 1.5, 4.0, 32.0):
            game = FabrikantGame(7, alpha)
            res = greedy_dynamics(game, random_profile(7, 2, seed=8), seed=9)
            assert res.converged
            assert owner_swap_stable(game, res.profile)

    def test_star_is_equilibrium_in_both_games(self):
        # alpha-game Nash (alpha >= 1) AND basic-game sum equilibrium.
        from repro.games import is_nash_equilibrium
        from repro.graphs import star_graph

        star = star_graph(6)
        assert is_sum_equilibrium(star)
        game = FabrikantGame(6, 2.0)
        assert is_nash_equilibrium(game, profile_from_graph(star))


class TestUniformityPipeline:
    def test_torus_through_theorem13(self):
        g = rotated_torus(12)  # n=288, d=12 > 2 lg 288? 2*8.17=16.3: no —
        # premise unmet, but the pipeline must still run and the power
        # arithmetic must hold.
        res = theorem13_transform(g, p=0.5)
        assert res.almost_diameter == math.ceil(
            res.input_diameter / res.almost_power
        )
        assert 0 <= res.uniform_report.epsilon <= 1

    def test_tree_dynamics_then_uniformity(self):
        # Stars are maximally non-uniform at r=1 for the hub vs leaves;
        # the measurement must agree with closed form.
        res = SwapDynamics(objective="sum", seed=0).run(random_tree(16, seed=0))
        report = distance_uniformity(res.graph)
        n = res.graph.n
        # Star: at r=2 every leaf covers n-2, hub covers 0; at r=1 hub
        # covers n-1, leaves 1. Best min-coverage is max(1, ...) = 1/n at
        # r=1 vs 0 at r=2 -> epsilon = 1 - 1/n.
        assert report.epsilon == pytest.approx(1 - 1 / n)


class TestDeterminismEndToEnd:
    def test_census_bitwise_reproducible(self):
        a = run_census([10], families=("dense",), replicates=2, root_seed=42)
        b = run_census([10], families=("dense",), replicates=2, root_seed=42)
        assert [(r.diameter_final, r.steps, r.m_final) for r in a] == [
            (r.diameter_final, r.steps, r.m_final) for r in b
        ]

    def test_experiment_tables_reproducible(self):
        from repro.bench import run_experiment

        t1 = run_experiment("poa-diameter", "quick")[0]
        t2 = run_experiment("poa-diameter", "quick")[0]
        assert t1.rows == t2.rows
