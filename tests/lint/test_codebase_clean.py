"""The repository's own tree passes its own contract checker.

This is the CI gate in test form: src/ and scripts/ must lint clean —
any new wall-clock call, untyped raise, dropped deadline, or stray RNG
shows up as a failing finding with its file:line in the assertion.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import LintConfig, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_scripts_are_violation_free():
    config = LintConfig(tests_dir=REPO_ROOT / "tests")
    findings, checked = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "scripts"], config
    )
    assert checked > 50  # the real tree, not an empty glob
    report = "\n".join(f.format() for f in findings)
    assert findings == [], f"repro lint found violations:\n{report}"
