"""Per-rule corpus tests: every rule fires on its bad fixture and stays
silent on its good twin, plus suppression-directive semantics (R0)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, lint_source, rule_catalogue

FIXTURES = Path(__file__).parent / "fixtures"

#: Fixture files live outside src/, so "fixtures" plays the library-path
#: role for the rules gated to library code (R4, R7).
CONFIG = LintConfig(library_part="fixtures")


def rules_in(path: Path, select: "str | None" = None) -> set:
    config = LintConfig(
        library_part="fixtures",
        select=None if select is None else frozenset({select}),
    )
    findings, checked = lint_paths([path], config)
    assert checked == 1
    return {f.rule for f in findings}


class TestRuleCorpus:
    @pytest.mark.parametrize(
        "rule", ["R1", "R2", "R3", "R4", "R6", "R7", "R8", "R10"]
    )
    def test_fires_on_bad_and_not_on_good(self, rule):
        bad = FIXTURES / f"{rule.lower()}_bad.py"
        good = FIXTURES / f"{rule.lower()}_good.py"
        assert rules_in(bad, rule) == {rule}, f"{rule} missed its bad corpus"
        assert rules_in(good, rule) == set(), f"{rule} false-positive on good"

    def test_good_corpus_is_fully_clean(self):
        # Not just rule-by-rule: the good files pass the *whole* catalogue.
        for good in sorted(FIXTURES.glob("*_good.py")):
            findings, _ = lint_paths([good], CONFIG)
            assert findings == [], f"{good.name}: {findings}"

    def test_finding_carries_location_and_code(self):
        findings, _ = lint_paths([FIXTURES / "r8_bad.py"], CONFIG)
        assert len(findings) == 4  # [], {}, set(), list()
        first = findings[0]
        assert first.rule == "R8"
        assert first.path.endswith("r8_bad.py")
        assert first.line > 0 and first.col > 0
        assert "append_to" in first.message

    def test_catalogue_covers_every_shipped_rule(self):
        codes = {code for code, _ in rule_catalogue()}
        assert {
            "R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
            "R10",
        } <= codes


class TestR1Details:
    def test_from_import_time_alias(self):
        src = "from time import time\n\ndef f():\n    return time()\n"
        assert any(f.rule == "R1" for f in lint_source(src))

    def test_monotonic_is_clean(self):
        src = "import time\n\ndef f():\n    return time.monotonic()\n"
        assert lint_source(src) == []

    def test_membership_in_set_is_clean(self):
        src = "def f(xs):\n    return [x for x in xs if x in {1, 2}]\n"
        assert lint_source(src) == []


class TestR2Details:
    def test_rng_module_itself_is_exempt(self):
        src = "import numpy as np\n\ndef make(seed):\n    return np.random.default_rng(seed)\n"
        config = LintConfig(library_part="repro")
        assert lint_source(src, path="src/repro/rng.py", config=config) == []
        hits = lint_source(src, path="src/repro/other.py", config=config)
        assert {f.rule for f in hits} == {"R2"}


class TestR10Details:
    SRC = "import os\n\ndef publish(tmp, final):\n    os.replace(tmp, final)\n"

    def test_repro_io_modules_are_exempt(self):
        config = LintConfig(library_part="repro")
        clean = lint_source(
            self.SRC, path="src/repro/io/checkpoint.py", config=config
        )
        assert clean == []
        hits = lint_source(
            self.SRC, path="src/repro/core/census.py", config=config
        )
        assert {f.rule for f in hits} == {"R10"}

    def test_non_library_code_is_exempt(self):
        config = LintConfig(library_part="repro")
        assert lint_source(
            self.SRC, path="scripts/helper.py", config=config
        ) == []

    def test_from_import_alias_is_caught(self):
        src = (
            "from os import fsync\n\n"
            "def sync(fh):\n    fsync(fh.fileno())\n"
        )
        config = LintConfig(library_part="repro")
        hits = lint_source(src, path="src/repro/core/x.py", config=config)
        assert {f.rule for f in hits} == {"R10"}


class TestR3Details:
    def test_unused_deadline_message_names_function(self):
        findings, _ = lint_paths([FIXTURES / "r3_bad.py"], CONFIG)
        messages = {f.rule: [] for f in findings}
        for f in findings:
            messages[f.rule].append(f.message)
        assert any("scan_unused" in m for m in messages["R3"])
        assert any("parallel_map" in m for m in messages["R3"])
        assert any("helper_scan" in m for m in messages["R3"])


class TestR5:
    def _src(self):
        return (
            "from typing import Literal\n"
            '_AUDIT_MODES = ("repair", "experimental")\n'
            'EvalMode = Literal["patched", "uncovered"]\n'
        )

    def test_uncovered_modes_flagged(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_modes.py").write_text(
            'def test_repair():\n    assert audit(mode="repair")\n'
            'def test_patched():\n    assert cost(mode=\'patched\')\n'
        )
        lib = tmp_path / "repro" / "kernel.py"
        lib.parent.mkdir()
        lib.write_text(self._src())
        config = LintConfig(tests_dir=tests_dir)
        findings, _ = lint_paths([lib], config)
        flagged = {f.message.split("'")[1] for f in findings if f.rule == "R5"}
        assert flagged == {"experimental", "uncovered"}

    def test_disabled_without_tests_dir(self, tmp_path):
        lib = tmp_path / "repro" / "kernel.py"
        lib.parent.mkdir()
        lib.write_text(self._src())
        findings, _ = lint_paths([lib], LintConfig(tests_dir=None))
        assert [f for f in findings if f.rule == "R5"] == []


class TestR7ExperimentsExemption:
    _SRC = (
        "from dataclasses import dataclass\n"
        "import json\n"
        "@dataclass\n"
        "class FooRecord:\n"
        "    a: int\n"
        "def dump(path, recs):\n"
        "    with open(path, 'w') as fh:\n"
        "        json.dump(recs, fh)\n"
    )

    def test_fires_outside_the_sanctioned_paths(self):
        config = LintConfig(library_part="repro")
        hits = lint_source(
            self._SRC, path="src/repro/core/writer.py", config=config
        )
        assert {f.rule for f in hits} == {"R7"}

    def test_experiments_layer_is_a_sanctioned_path(self):
        config = LintConfig(library_part="repro")
        hits = lint_source(
            self._SRC, path="src/repro/experiments/writer.py", config=config
        )
        assert [f for f in hits if f.rule == "R7"] == []


class TestR9:
    _REGISTRY = (
        "register_experiment(ExperimentDef(\n"
        "    name='census-pinned',\n"
        "    summary='x',\n"
        "))\n"
        "register_experiment(ExperimentDef(name='census-unpinned'))\n"
    )

    def _lint(self, tmp_path, tests_dir):
        lib = tmp_path / "repro" / "registry.py"
        lib.parent.mkdir(exist_ok=True)
        lib.write_text(self._REGISTRY)
        findings, _ = lint_paths([lib], LintConfig(tests_dir=tests_dir))
        return [f for f in findings if f.rule == "R9"]

    def test_unpinned_experiment_flagged(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_golden.py").write_text(
            'CASES = {"census-pinned": "census_pinned.jsonl"}\n'
        )
        r9 = self._lint(tmp_path, tests_dir)
        assert [f.message.split("'")[1] for f in r9] == ["census-unpinned"]

    def test_non_golden_test_files_do_not_count(self, tmp_path):
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_other.py").write_text(
            '"census-pinned"\n"census-unpinned"\n'
        )
        r9 = self._lint(tmp_path, tests_dir)
        assert {f.message.split("'")[1] for f in r9} == {
            "census-pinned", "census-unpinned",
        }

    def test_disabled_without_tests_dir(self, tmp_path):
        assert self._lint(tmp_path, None) == []


class TestSuppression:
    def test_same_line_directive_silences_named_rule(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro-lint: disable=R1 -- coarse log stamp only\n"
        )
        assert lint_source(src) == []

    def test_standalone_directive_binds_to_next_code_line(self):
        src = (
            "import time\n"
            "def f():\n"
            "    # repro-lint: disable=R1 -- coarse log stamp only\n"
            "    return time.time()\n"
        )
        assert lint_source(src) == []

    def test_directive_does_not_leak_to_other_lines(self):
        src = (
            "import time\n"
            "def f():\n"
            "    a = time.time()  # repro-lint: disable=R1 -- stamp\n"
            "    b = time.time()\n"
            "    return a, b\n"
        )
        hits = lint_source(src)
        assert [(f.rule, f.line) for f in hits] == [("R1", 4)]

    def test_directive_silences_only_named_rule(self):
        src = (
            "import time\n"
            "def f(xs=[]):  # repro-lint: disable=R1 -- wrong code for this rule\n"
            "    return xs\n"
        )
        assert {f.rule for f in lint_source(src)} == {"R8"}

    def test_missing_reason_is_an_r0_finding(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro-lint: disable=R1\n"
        )
        rules = {f.rule for f in lint_source(src)}
        # The unjustified directive is reported AND does not suppress.
        assert rules == {"R0", "R1"}

    def test_unparsable_directive_is_an_r0_finding(self):
        src = "x = 1  # repro-lint: disable-next-line R1\n"
        assert {f.rule for f in lint_source(src)} == {"R0"}

    def test_directive_in_string_literal_is_ignored(self):
        src = 'DOC = "# repro-lint: disable=R1"\nx = 1\n'
        assert lint_source(src) == []

    def test_disable_all(self):
        src = (
            "import time\n"
            "def f(xs=[]):  # repro-lint: disable=ALL -- generated stub\n"
            "    return xs, time.time()\n"
        )
        hits = lint_source(src)
        assert [f for f in hits if f.line == 2] == []


class TestEngine:
    def test_syntax_error_becomes_parse_finding(self):
        hits = lint_source("def broken(:\n")
        assert [f.rule for f in hits] == ["PARSE"]

    def test_select_restricts_rules(self):
        src = "import time\n\ndef f(xs=[]):\n    return xs, time.time()\n"
        only_r8 = lint_source(src, config=LintConfig(select=frozenset({"R8"})))
        assert {f.rule for f in only_r8} == {"R8"}

    def test_findings_sorted_by_location(self):
        findings, _ = lint_paths([FIXTURES / "r1_bad.py"], CONFIG)
        assert findings == sorted(findings)
