"""R2 corpus: seed discipline via the repro.rng helpers."""
from repro.rng import derive_seed, make_rng, spawn_rngs


def fresh(seed):
    rng = make_rng(seed)
    children = spawn_rngs(rng, 4)
    return rng, children


def derived(seed):
    return make_rng(derive_seed(seed, "replica", 3))
