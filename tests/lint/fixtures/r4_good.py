"""R4 corpus: typed raises; justified or re-raising blanket excepts."""
from repro.errors import ConfigurationError


def validate(k):
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    return k


def cleanup_and_reraise(fn, resource):
    try:
        return fn()
    except BaseException:
        resource.close()
        raise


def quarantine(fn):
    try:
        return fn()
    except Exception:  # pragma: no cover - task bodies raise anything
        return None


def annotated(fn):
    try:
        return fn()
    except Exception:  # repro-lint: disable=R4 -- probe may fail arbitrarily; fallback is correct
        return None
