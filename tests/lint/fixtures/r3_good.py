"""R3 corpus: deadlines threaded all the way down."""
from repro.parallel import check_deadline, parallel_map


def scan(fn, tasks, *, deadline=None):
    check_deadline(deadline)
    return parallel_map(fn, tasks, workers=2, deadline=deadline)


def helper_scan(edges, *, deadline=None):
    for edge in edges:
        check_deadline(deadline)
        yield edge


def caller_forwards(edges, *, deadline=None):
    return list(helper_scan(edges, deadline=deadline))


def no_deadline_no_obligation(items):
    # Builtin name calls (map) are not project callees; a function without
    # a deadline parameter owes nothing.
    return list(map(str, items))
