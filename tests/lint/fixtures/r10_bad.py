"""R10 corpus: raw durability primitives outside repro.io."""

import os
from os import replace as os_replace


def publish(tmp, final):
    os.replace(tmp, final)


def publish_aliased(tmp, final):
    os_replace(tmp, final)


def sync(fh):
    os.fsync(fh.fileno())


def shuffle_aside(path, dest):
    os.rename(path, dest)
