"""R2 corpus: RNG construction and reseeding outside repro.rng."""
import numpy as np
from numpy.random import default_rng


def fresh(seed):
    a = np.random.default_rng(seed)
    b = default_rng(seed)
    c = np.random.RandomState(seed)
    return a, b, c


def reseed(rng, seed):
    rng.seed(seed)
    return rng
