"""R6 corpus: workers mutating shared read-only array views."""
import numpy as np


def worker_direct(payload, arrays):
    arrays["dm"][payload] = 0
    return payload


def worker_alias(payload, arrays):
    view = arrays["dm"]
    view[payload, :] = -1
    view += 1
    return int(view.sum())


def worker_out(payload, arrays):
    dm = arrays["dm"]
    np.minimum(dm, payload, out=dm)
    return payload


def worker_inplace_method(payload, arrays):
    arrays["dm"].fill(0)
    arrays["dm"].sort()
    return payload
