"""R7 corpus: a record-defining module writing files directly."""
import json
from dataclasses import dataclass
from pathlib import Path


@dataclass
class SampleRecord:
    n: int
    cost: float


def dump_records(records, path):
    with open(path, "w") as fh:
        for rec in records:
            json.dump({"n": rec.n, "cost": rec.cost}, fh)


def dump_text(records, path):
    Path(path).write_text("\n".join(str(r.n) for r in records))
