"""R8 corpus: None-or-immutable defaults."""


def append_to(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def tally(key, *, counts=None):
    counts = {} if counts is None else counts
    counts[key] = counts.get(key, 0) + 1
    return counts


def collect(seen=(), label="x", limit=0):
    return tuple(seen), label, limit
