"""R10 corpus twin: publication routed through the sanctioned helpers."""

import os

from repro.io.fsutil import fsync_dir, publish_replace


def publish(tmp, final):
    publish_replace(tmp, final)
    fsync_dir(final.parent)


def unrelated_os_use(path):
    # Plain os calls that do not publish state are fine.
    return os.getpid(), os.path.basename(path)
