"""R7 corpus: records serialized through the store; reads are fine."""
from dataclasses import dataclass


@dataclass
class SampleRecord:
    n: int
    cost: float


def load_raw(path):
    with open(path) as fh:  # read mode: allowed
        return fh.read()


def write_records(store, records):
    # Serialization goes through the jsonl_store sink, never direct I/O.
    store.append_records(records)
