"""R1 corpus: every statement here is a determinism violation."""
import random
import time
from datetime import datetime


def stamp():
    started = time.time()
    nanos = time.time_ns()
    day = datetime.now()
    return started, nanos, day


def pick(items):
    return random.choice(items) + random.random()


def iterate():
    out = []
    for x in {3, 1, 2}:
        out.append(x)
    for y in set(out):
        out.append(y)
    squares = [v * v for v in frozenset(out)]
    return out, squares
