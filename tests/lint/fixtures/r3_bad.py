"""R3 corpus: deadlines accepted but dropped on the floor."""
from repro.parallel import check_deadline, parallel_map


def scan_unused(items, *, deadline=None):
    # Accepts a deadline but never consults it: the caller's timeout
    # silently expires inside this loop.
    out = []
    for item in items:
        out.append(item * 2)
    return out


def scan_unforwarded(fn, tasks, *, deadline=None):
    check_deadline(deadline)
    # Forwards nothing: parallel_map runs unbounded.
    return parallel_map(fn, tasks, workers=2)


def helper_scan(edges, *, deadline=None):
    for edge in edges:
        check_deadline(deadline)
        yield edge


def caller_drops_it(edges, *, deadline=None):
    check_deadline(deadline)
    # Calls a deadline-capable project function without the deadline.
    return list(helper_scan(edges))
