"""R8 corpus: mutable defaults shared across calls."""


def append_to(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(key, *, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def collect(seen=set(), extras=list()):
    return seen, extras
