"""R4 corpus: untyped raises and unexplained blanket excepts."""


def validate(k):
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k > 100:
        raise Exception("k too large")
    return k


def swallow(fn):
    try:
        return fn()
    except Exception:
        return None
