"""R1 corpus: deterministic equivalents of everything r1_bad does."""
import time


def stamp():
    started = time.monotonic()
    precise = time.perf_counter()
    return started, precise


def pick(items, rng):
    return items[int(rng.integers(0, len(items)))]


def iterate():
    out = []
    for x in sorted({3, 1, 2}):
        out.append(x)
    for y in sorted(set(out)):
        out.append(y)
    if 3 in {1, 2, 3}:  # membership is order-free, not a violation
        out.append(3)
    squares = [v * v for v in sorted(frozenset(out))]
    return out, squares
