"""R6 corpus: workers reading shared views, writing local copies."""
import numpy as np


def worker_copy(payload, arrays):
    local = arrays["dm"].copy()
    local[payload] = 0  # local copy: fine
    return int(local.sum())


def worker_fresh_result(payload, arrays):
    costs = np.minimum(arrays["dm"], payload + 1).astype(float)
    costs[payload] = np.inf  # fresh array from a call, not a view
    return float(costs.min())


def not_a_worker(payload, rows):
    rows[payload] = 0  # no `arrays` parameter: rule does not apply
    return payload
