"""CLI surface: exit codes, text and JSON output, repro-bench wiring."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as bench_main
from repro.lint.cli import main as lint_main
from repro.lint.findings import JSON_VERSION

FIXTURES = Path(__file__).parent / "fixtures"


def run(capsys, argv):
    code = lint_main(argv)
    return code, capsys.readouterr().out


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        code, out = run(capsys, [str(FIXTURES / "r8_good.py")])
        assert code == 0
        assert "clean: 0 findings in 1 file(s)" in out

    def test_findings_exit_one(self, capsys):
        code, out = run(capsys, [str(FIXTURES / "r8_bad.py")])
        assert code == 1
        assert "R8" in out and "r8_bad.py" in out
        assert "finding(s)" in out.splitlines()[-1]

    def test_list_rules(self, capsys):
        code, out = run(capsys, ["--list-rules"])
        assert code == 0
        for rule in ("R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
            assert rule in out


class TestJsonSchema:
    def test_schema_fields(self, capsys):
        code, out = run(
            capsys, [str(FIXTURES / "r8_bad.py"), "--format", "json"]
        )
        assert code == 1
        doc = json.loads(out)
        assert doc["version"] == JSON_VERSION
        assert doc["checked_files"] == 1
        assert doc["finding_count"] == len(doc["findings"]) > 0
        assert doc["counts"] == {"R8": doc["finding_count"]}
        first = doc["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}

    def test_clean_json(self, capsys):
        code, out = run(
            capsys, [str(FIXTURES / "r8_good.py"), "--format", "json"]
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["finding_count"] == 0 and doc["findings"] == []


class TestSelect:
    def test_select_limits_rules(self, capsys):
        bad = str(FIXTURES / "r1_bad.py")
        code, out = run(capsys, [bad, "--select", "R8", "--format", "json"])
        assert code == 0  # r1_bad has no R8 findings
        assert json.loads(out)["finding_count"] == 0


class TestBenchSubcommand:
    def test_repro_bench_lint(self, capsys):
        code = bench_main(["lint", str(FIXTURES / "r8_good.py")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_repro_bench_lint_failing(self, capsys):
        code = bench_main(["lint", str(FIXTURES / "r8_bad.py")])
        assert code == 1
