"""Census resume hardening: config headers, atomic rewrites, torn streams.

The three failure modes fixed in ISSUE 3, each pinned by a regression test:

1. resuming with a *different configuration* used to pass validation
   (seeds derive from grid position, so ``(n, family, seed)`` matched) and
   silently mixed records from different games — now the JSONL embeds a
   run-config header and both the header and every resumed record are
   validated, raising on any mismatch;
2. the prefix rewrite used to ``open("w")`` the live file before writing —
   a crash in the window between truncate and rewrite lost the entire
   streamed fleet; the rewrite now goes through a ``.tmp`` sidecar and
   ``os.replace``, so a crash at any instant leaves either the old file or
   the complete new prefix;
3. an undecodable line *mid-file* used to be treated like a torn tail —
   every record after it was silently discarded and recomputed; it now
   fails loudly (only a torn *final* line is dropped).
"""

import json

import pytest

import repro.core.census as census_mod
import repro.io.jsonl_store as store_mod
from repro.core.census import (
    CENSUS_CONFIG_KEY,
    CensusRecord,
    _read_jsonl_prefix,
    run_census,
)

KWARGS = dict(
    n_values=[8], families=("tree", "sparse"), replicates=2, root_seed=3,
)


@pytest.fixture()
def full_run(tmp_path):
    """An uninterrupted streamed census run -> (records, path, text)."""
    path = tmp_path / "census.jsonl"
    records = run_census(jsonl_path=path, **KWARGS)
    return records, path, path.read_text()


class TestHeader:
    def test_first_line_is_config_header(self, full_run):
        _, path, text = full_run
        header = json.loads(text.splitlines()[0])
        assert header[CENSUS_CONFIG_KEY] == 1
        assert header["objective"] == "sum"
        assert header["schedule"] == "round_robin"
        assert header["responder"] == "best"
        assert header["n_values"] == [8]
        assert header["families"] == ["tree", "sparse"]
        assert header["replicates"] == 2
        assert header["root_seed"] == 3

    def test_read_prefix_roundtrips_header_and_records(self, full_run):
        records, path, _ = full_run
        header, parsed = _read_jsonl_prefix(path)
        assert header is not None and header["objective"] == "sum"
        assert parsed == records

    def test_resume_of_complete_run_recomputes_nothing(self, full_run):
        records, path, text = full_run

        def boom(task):  # any recompute would crash the resume
            raise AssertionError("resume recomputed a finished trajectory")

        original = census_mod._census_task
        census_mod._census_task = boom
        try:
            resumed = run_census(jsonl_path=path, resume=True, **KWARGS)
        finally:
            census_mod._census_task = original
        assert resumed == records
        assert path.read_text() == text


class TestConfigMismatch:
    @pytest.mark.parametrize(
        "override",
        [
            {"objective": "max"},
            {"objective": "budget-sum:cap=3"},
            {"schedule": "random"},
            {"responder": "first"},
            {"max_steps": 777},
            {"audit_mode": "repair"},
            {"verify": False},
            {"replicates": 3},
            {"root_seed": 4},
        ],
    )
    def test_resume_with_changed_config_raises(self, full_run, override):
        _, path, text = full_run
        kwargs = {**KWARGS, "jsonl_path": path, "resume": True, **override}
        with pytest.raises(ValueError, match="resume mismatch"):
            run_census(**kwargs)
        # The refused resume must not have touched the stream.
        assert path.read_text() == text

    def test_legacy_headerless_file_is_refused(self, full_run, tmp_path):
        # A pre-header file cannot prove its max_steps/verify/audit_mode —
        # the exact silent-mixing bug the header closes — so resume refuses
        # it outright rather than validating the fields it can see.
        records, path, text = full_run
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text("\n".join(text.splitlines()[1:]) + "\n")
        with pytest.raises(ValueError, match="no run-config header"):
            run_census(jsonl_path=legacy, resume=True, **KWARGS)
        # Adopting the file by prepending the matching header works.
        legacy.write_text(text.splitlines()[0] + "\n" + legacy.read_text())
        assert run_census(jsonl_path=legacy, resume=True, **KWARGS) == records

    def test_header_pasted_onto_foreign_records_is_caught(
        self, full_run, tmp_path
    ):
        # The per-record check backs the header up: a matching header glued
        # onto records from a different game still raises.
        _, path, text = full_run
        lines = text.splitlines()
        foreign = json.loads(lines[1])
        foreign["objective"] = "max"
        lines[1] = json.dumps(foreign)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="resume mismatch"):
            run_census(jsonl_path=path, resume=True, **KWARGS)


class TestAtomicRewrite:
    def test_crash_mid_rewrite_loses_no_records(self, full_run, monkeypatch):
        """Die while rewriting the prefix: the original stream survives."""
        records, path, text = full_run
        # Interrupt the original run: keep the header and half the records.
        lines = text.splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        interrupted = path.read_text()

        real_write = census_mod._write_jsonl
        calls = {"n": 0}

        def dying_write(sink, recs):
            recs = list(recs)
            if calls["n"] == 0 and recs:
                calls["n"] += 1
                real_write(sink, recs[:1])
                raise RuntimeError("simulated crash mid-rewrite")
            real_write(sink, recs)

        monkeypatch.setattr(census_mod, "_write_jsonl", dying_write)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_census(jsonl_path=path, resume=True, **KWARGS)
        # The live file is byte-identical to the pre-crash state; the torn
        # half-written prefix only ever existed in the .tmp sidecar.
        assert path.read_text() == interrupted
        monkeypatch.undo()

        resumed = run_census(jsonl_path=path, resume=True, **KWARGS)
        assert resumed == records
        assert path.read_text() == text

    def test_crash_between_truncate_and_rewrite_window_is_gone(
        self, full_run, monkeypatch
    ):
        """Die exactly at the swap: either old bytes or the full new prefix."""
        records, path, text = full_run

        def no_replace(src, dst):
            raise RuntimeError("simulated crash before os.replace")

        # The atomic swap lives in the shared store since ISSUE 4.
        monkeypatch.setattr(store_mod.os, "replace", no_replace)
        with pytest.raises(RuntimeError, match="before os.replace"):
            run_census(jsonl_path=path, resume=True, **KWARGS)
        assert path.read_text() == text  # untouched
        monkeypatch.undo()
        assert run_census(jsonl_path=path, resume=True, **KWARGS) == records

    def test_torn_tail_resume_is_lossless(self, full_run):
        records, path, text = full_run
        # Tear the final line mid-byte, as a crash mid-append would.
        path.write_text(text[: len(text) - 40])
        resumed = run_census(jsonl_path=path, resume=True, **KWARGS)
        assert resumed == records
        assert path.read_text() == text


class TestMidFileTear:
    def test_mid_file_garbage_raises_instead_of_discarding(self, full_run):
        _, path, text = full_run
        lines = text.splitlines()
        lines[2] = lines[2][:11]  # tear a line that is NOT the last
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt mid-file"):
            run_census(jsonl_path=path, resume=True, **KWARGS)

    def test_mid_file_wrong_shape_json_raises(self, full_run):
        _, path, text = full_run
        lines = text.splitlines()
        lines[2] = json.dumps({"not": "a record"})
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not a census record"):
            run_census(jsonl_path=path, resume=True, **KWARGS)

    def test_read_prefix_drops_only_final_torn_line(self, full_run):
        records, path, text = full_run
        lines = text.splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:17])
        header, parsed = _read_jsonl_prefix(path)
        assert header is not None
        assert parsed == records[:-1]

    def test_read_prefix_drops_complete_json_with_torn_fields_at_eof(
        self, full_run
    ):
        records, path, text = full_run
        lines = text.splitlines()
        lines[-1] = json.dumps({"n": 8})  # valid JSON, not a full record
        path.write_text("\n".join(lines) + "\n")
        header, parsed = _read_jsonl_prefix(path)
        assert parsed == records[:-1]


class TestRecordCompat:
    def test_records_roundtrip_through_jsonl(self, full_run):
        records, path, _ = full_run
        _, parsed = _read_jsonl_prefix(path)
        assert all(isinstance(r, CensusRecord) for r in parsed)
        assert parsed == records
