"""Trajectory census tests: grid, outcomes, sharding, resumable streams.

The resume-hardening classes mirror ``tests/core/test_census_resume.py``
(the PR-3 crash-window pattern) on the trajectory stream, which now rides
the shared :class:`repro.io.jsonl_store.JsonlStore`.
"""

import json

import pytest

import repro.core.trajcensus as traj_mod
from repro.core.costmodel import resolve_cost_model
from repro.core.equilibrium import is_equilibrium
from repro.core.trajcensus import (
    TRAJ_CONFIG_KEY,
    TrajectoryRecord,
    graph_fingerprint,
    run_trajectory_census,
    trajectory_sweep,
)
from repro.graphs import CSRGraph, path_graph

# A small grid that exercises both outcomes: the sum game converges from
# every family; the interest variant cycles from dense starts.
KWARGS = dict(
    n_values=[8],
    families=("tree", "dense"),
    objectives=("sum", "interest-sum:k=3,seed=0"),
    schedules=("round_robin",),
    responders=("best",),
    replicates=2,
    root_seed=0,
    max_steps=500,
)


@pytest.fixture(scope="module")
def records():
    return run_trajectory_census(**KWARGS)


class TestGrid:
    def test_one_record_per_grid_point_and_replicate(self, records):
        assert len(records) == 2 * 2 * 2  # objectives x families x reps

    def test_records_carry_grid_coordinates(self, records):
        coords = {
            (r.objective, r.family, r.replicate) for r in records
        }
        assert len(coords) == len(records)
        assert all(r.n == 8 and r.schedule == "round_robin" for r in records)
        assert all(r.responder == "best" for r in records)

    def test_seeds_match_the_sweep(self, records):
        pts = trajectory_sweep(
            KWARGS["n_values"], KWARGS["families"], KWARGS["objectives"],
            KWARGS["schedules"], KWARGS["responders"],
            KWARGS["replicates"], KWARGS["root_seed"],
        ).points()
        assert [r.seed for r in records] == [p.seed for p in pts]
        assert [r.replicate for r in records] == [p.replicate for p in pts]

    def test_reruns_are_bit_identical(self, records):
        assert run_trajectory_census(**KWARGS) == records


class TestOutcomes:
    def test_trichotomy_is_exclusive(self, records):
        for r in records:
            assert (
                int(r.converged) + int(r.cycle_detected) + int(r.exhausted)
            ) == 1

    def test_cycles_are_recorded(self, records):
        cycles = [r for r in records if r.cycle_detected]
        assert cycles, "the interest/dense grid corner must cycle"
        for r in cycles:
            assert r.objective == "interest-sum:k=3,seed=0"
            assert not r.converged and not r.exhausted
            assert r.verified_equilibrium is None

    def test_exhaustion_is_not_cycling(self):
        # One-move budget from a restless start: the run must report
        # max-steps exhaustion, not a cycle (and not convergence).
        recs = run_trajectory_census(
            [10], families=("tree",), objectives=("sum",),
            replicates=1, max_steps=1, root_seed=1,
        )
        (rec,) = recs
        assert rec.exhausted
        assert not rec.converged and not rec.cycle_detected
        assert rec.steps == 1

    def test_converged_endpoints_verify(self, records):
        conv = [r for r in records if r.converged]
        assert conv
        assert all(r.verified_equilibrium for r in conv)

    def test_trajectory_summary_fields_populated(self, records):
        for r in records:
            assert r.social_cost_initial > 0
            assert r.diameter_peak >= max(
                r.diameter_initial, r.diameter_final
            )
            assert r.socially_monotone == (r.selfish_regressions == 0)

    def test_sum_records_socially_monotone_cost_endpoints(self, records):
        # Sum dynamics from trees end at stars: the recorded social cost
        # must be the model's (= total pairwise distance for SumCost).
        tree_sum = [
            r for r in records if r.objective == "sum" and r.family == "tree"
        ]
        star_cost = 2.0 * ((8 - 1) + (8 - 1) * (8 - 2))  # sum version, n=8
        for r in tree_sum:
            assert r.converged
            assert r.social_cost_final == star_cost


class TestFingerprint:
    def test_deterministic_and_edge_order_independent(self):
        g1 = CSRGraph(4, [(0, 1), (1, 2), (2, 3)])
        g2 = CSRGraph(4, [(2, 3), (0, 1), (1, 2)])
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_label_sensitive(self):
        g1 = path_graph(4)
        g2 = CSRGraph(4, [(1, 0), (0, 2), (2, 3)])  # isomorphic, relabelled
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_distinguishes_n(self):
        g1 = path_graph(3)
        g2 = CSRGraph(4, [(0, 1), (1, 2)])  # same edges, extra isolate
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_converged_same_endpoint_shares_fingerprint(self, records):
        by_fp: dict = {}
        for r in records:
            if r.converged:
                by_fp.setdefault(r.final_fingerprint, []).append(r)
        assert by_fp  # smoke: fingerprints group converged runs


class TestEngineModeInvariance:
    """engine_mode is an execution detail: records must be bit-identical.

    (Between the engine-backed modes; the seed oracle path counts
    activations differently — full sweeps instead of dirty-set skips — so
    it is not part of the record-equality contract.)
    """

    def test_records_identical_across_engine_modes(self, records):
        assert (
            run_trajectory_census(engine_mode="incremental", **KWARGS)
            == records
        )

    def test_resume_across_engine_modes(self, tmp_path):
        # engine_mode is deliberately absent from the stream's config
        # header (like workers), so a fleet streamed under one engine can
        # be resumed under another without a config mismatch.
        path = tmp_path / "traj.jsonl"
        full = run_trajectory_census(
            engine_mode="incremental", jsonl_path=path, **KWARGS
        )
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")  # header + 2 records
        resumed = run_trajectory_census(
            engine_mode="batched", jsonl_path=path, resume=True, **KWARGS
        )
        assert resumed == full

    def test_resume_rejects_oracle_accounting_mismatch(self, tmp_path):
        # The oracle path counts activations by full sweeps — resuming an
        # engine-written stream with it would silently mix incompatible
        # activation columns, so the header records the accounting.
        path = tmp_path / "traj.jsonl"
        run_trajectory_census(
            engine_mode="incremental", jsonl_path=path, **KWARGS
        )
        with pytest.raises(ValueError):
            run_trajectory_census(
                engine_mode="oracle", jsonl_path=path, resume=True, **KWARGS
            )


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_records_identical_across_worker_counts(self, records, workers):
        assert run_trajectory_census(workers=workers, **KWARGS) == records

    def test_streamed_jsonl_identical_across_worker_counts(
        self, records, tmp_path
    ):
        texts = []
        for w in (1, 2):
            path = tmp_path / f"w{w}.jsonl"
            run_trajectory_census(workers=w, jsonl_path=path, **KWARGS)
            texts.append(path.read_text())
        assert texts[0] == texts[1]


@pytest.fixture()
def full_run(tmp_path):
    """An uninterrupted streamed run -> (records, path, text)."""
    path = tmp_path / "traj.jsonl"
    records = run_trajectory_census(jsonl_path=path, **KWARGS)
    return records, path, path.read_text()


class TestStream:
    def test_first_line_is_config_header(self, full_run):
        _, path, text = full_run
        header = json.loads(text.splitlines()[0])
        assert header[TRAJ_CONFIG_KEY] == 2  # v2: activation accounting
        assert header["activation_accounting"] == "engine"
        assert header["objectives"] == ["sum", "interest-sum:k=3,seed=0"]
        assert header["schedules"] == ["round_robin"]
        assert header["families"] == ["tree", "dense"]
        assert header["n_values"] == [8]
        assert header["replicates"] == 2

    def test_records_roundtrip(self, full_run):
        records, path, _ = full_run
        _, parsed = traj_mod._make_store(path, {}).read_prefix()
        assert all(isinstance(r, TrajectoryRecord) for r in parsed)
        assert parsed == records

    def test_resume_of_complete_run_recomputes_nothing(self, full_run):
        records, path, text = full_run

        def boom(task):
            raise AssertionError("resume recomputed a finished trajectory")

        original = traj_mod._trajectory_task
        traj_mod._trajectory_task = boom
        try:
            resumed = run_trajectory_census(
                jsonl_path=path, resume=True, **KWARGS
            )
        finally:
            traj_mod._trajectory_task = original
        assert resumed == records
        assert path.read_text() == text

    def test_resume_mid_fleet_is_lossless(self, full_run):
        records, path, text = full_run
        lines = text.splitlines()
        path.write_text("\n".join(lines[:4]) + "\n")  # header + 3 records
        resumed = run_trajectory_census(jsonl_path=path, resume=True, **KWARGS)
        assert resumed == records
        assert path.read_text() == text

    def test_torn_tail_resume_is_lossless(self, full_run):
        records, path, text = full_run
        path.write_text(text[: len(text) - 40])
        resumed = run_trajectory_census(jsonl_path=path, resume=True, **KWARGS)
        assert resumed == records
        assert path.read_text() == text

    def test_resume_without_path_rejected(self):
        with pytest.raises(ValueError, match="needs a jsonl_path"):
            run_trajectory_census(resume=True, **KWARGS)


class TestResumeValidation:
    @pytest.mark.parametrize(
        "override",
        [
            {"objectives": ("sum",)},
            {"objectives": ("sum", "interest-sum:k=4,seed=0")},
            {"schedules": ("random",)},
            {"responders": ("first",)},
            {"families": ("tree", "sparse")},
            {"max_steps": 777},
            {"replicates": 3},
            {"root_seed": 4},
            {"verify": False},
            {"audit_mode": "repair"},
        ],
    )
    def test_resume_with_changed_config_raises(self, full_run, override):
        _, path, text = full_run
        kwargs = {**KWARGS, "jsonl_path": path, "resume": True, **override}
        with pytest.raises(ValueError, match="resume mismatch"):
            run_trajectory_census(**kwargs)
        assert path.read_text() == text  # refused resume must not touch it

    def test_header_pasted_onto_foreign_records_is_caught(self, full_run):
        _, path, text = full_run
        lines = text.splitlines()
        foreign = json.loads(lines[1])
        foreign["objective"] = "max"
        lines[1] = json.dumps(foreign)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="resume mismatch"):
            run_trajectory_census(jsonl_path=path, resume=True, **KWARGS)

    def test_mid_file_tear_raises(self, full_run):
        _, path, text = full_run
        lines = text.splitlines()
        lines[2] = lines[2][:11]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt mid-file"):
            run_trajectory_census(jsonl_path=path, resume=True, **KWARGS)

    def test_headerless_file_is_refused(self, full_run):
        _, path, text = full_run
        path.write_text("\n".join(text.splitlines()[1:]) + "\n")
        with pytest.raises(ValueError, match="no run-config header"):
            run_trajectory_census(jsonl_path=path, resume=True, **KWARGS)

    def test_crash_mid_rewrite_loses_no_records(self, full_run, monkeypatch):
        """Die while rewriting the prefix: the original stream survives."""
        records, path, text = full_run
        lines = text.splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        interrupted = path.read_text()

        real_write = traj_mod._write_jsonl
        calls = {"n": 0}

        def dying_write(sink, recs):
            recs = list(recs)
            if calls["n"] == 0 and recs:
                calls["n"] += 1
                real_write(sink, recs[:1])
                raise RuntimeError("simulated crash mid-rewrite")
            real_write(sink, recs)

        monkeypatch.setattr(traj_mod, "_write_jsonl", dying_write)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_trajectory_census(jsonl_path=path, resume=True, **KWARGS)
        # The live file is untouched; the torn prefix only ever existed in
        # the .tmp sidecar.
        assert path.read_text() == interrupted
        monkeypatch.undo()

        resumed = run_trajectory_census(jsonl_path=path, resume=True, **KWARGS)
        assert resumed == records
        assert path.read_text() == text


class TestRecordCorrectness:
    def test_final_graph_audit_matches_record(self):
        # Rerun one grid cell standalone and re-audit its endpoint with the
        # model-aware checker: the record's verdict must agree.
        recs = run_trajectory_census(
            [10], families=("tree",), objectives=("max",),
            replicates=1, root_seed=3, max_steps=1000,
        )
        (rec,) = recs
        assert rec.converged and rec.objective == "max"
        from repro.core.dynamics import SwapDynamics
        from repro.core.census import seed_graph
        from repro.rng import derive_seed

        dyn = SwapDynamics(
            objective="max", max_steps=1000, seed=derive_seed(rec.seed, 1)
        )
        final = dyn.run(seed_graph("tree", 10, rec.seed)).graph
        assert graph_fingerprint(final) == rec.final_fingerprint
        model = resolve_cost_model("max", 10)
        assert is_equilibrium(final, model) == rec.verified_equilibrium
