"""Dynamics engine tests: convergence, schedules, instrumentation."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, DisconnectedGraphError
from repro.core import (
    SwapDynamics,
    is_max_equilibrium,
    is_sum_equilibrium,
    lift_distances,
    resolve_cost_model,
)
from repro.graphs import (
    CSRGraph,
    cycle_graph,
    distance_matrix,
    path_graph,
    random_connected_gnm,
    random_tree,
    total_pairwise_distance,
)
from repro.theory import is_star


class TestConfiguration:
    def test_bad_objective(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(objective="median")

    def test_bad_schedule(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(schedule="chaotic")

    def test_bad_responder(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(responder="psychic")

    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(max_steps=0)

    def test_disconnected_start_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            SwapDynamics().run(CSRGraph(3, [(0, 1)]))


class TestSumConvergence:
    def test_tree_converges_to_star(self):
        # Theorem 1 in motion: swaps preserve the edge count and cannot
        # disconnect, so trees stay trees and must end at the star.
        res = SwapDynamics(objective="sum", seed=0).run(random_tree(14, seed=2))
        assert res.converged
        assert is_star(res.graph)
        assert is_sum_equilibrium(res.graph)

    def test_path_converges(self):
        res = SwapDynamics(objective="sum", seed=1).run(path_graph(10))
        assert res.converged
        assert is_sum_equilibrium(res.graph)

    def test_equilibrium_input_is_fixed_point(self):
        from repro.graphs import star_graph

        g = star_graph(8)
        res = SwapDynamics(objective="sum", seed=0).run(g)
        assert res.converged
        assert res.steps == 0
        assert res.graph == g

    @pytest.mark.parametrize("schedule", ["round_robin", "random", "greedy"])
    def test_all_schedules_converge_on_small_tree(self, schedule):
        res = SwapDynamics(
            objective="sum", schedule=schedule, seed=7
        ).run(random_tree(10, seed=3))
        assert res.converged
        assert is_sum_equilibrium(res.graph)

    @pytest.mark.parametrize("responder", ["best", "first"])
    def test_both_responders_converge(self, responder):
        res = SwapDynamics(
            objective="sum", responder=responder, seed=9, max_steps=5000
        ).run(cycle_graph(8))
        assert res.converged
        assert is_sum_equilibrium(res.graph)


class TestMaxConvergence:
    def test_max_dynamics_reach_max_equilibrium(self):
        res = SwapDynamics(objective="max", seed=4).run(random_tree(10, seed=6))
        assert res.converged
        # Best-responder max dynamics apply neutral deletions, so the
        # terminal graph satisfies the full definition incl. criticality.
        assert is_max_equilibrium(res.graph)

    def test_extraneous_chord_gets_deleted(self):
        g = cycle_graph(6).with_edges(add=[(0, 2)])
        res = SwapDynamics(objective="max", seed=0).run(g)
        assert res.converged
        assert is_max_equilibrium(res.graph)
        assert res.graph.m < g.m  # something extraneous was dropped


class TestInstrumentation:
    def test_traces_recorded(self):
        res = SwapDynamics(objective="sum", record=True, seed=0).run(
            path_graph(8)
        )
        assert len(res.moves) == res.steps
        # One snapshot at start plus one per applied move.
        assert len(res.diameter_trace) == res.steps + 1
        assert len(res.social_cost_trace) == res.steps + 1

    def test_traces_absent_without_recording(self):
        res = SwapDynamics(objective="sum", record=False, seed=0).run(
            path_graph(8)
        )
        assert res.moves == []

    def test_budget_exhaustion_reported(self):
        res = SwapDynamics(objective="sum", max_steps=1, seed=0).run(
            path_graph(12)
        )
        assert not res.converged
        assert res.steps == 1

    def test_determinism(self):
        a = SwapDynamics(objective="sum", schedule="random", seed=11).run(
            cycle_graph(9)
        )
        b = SwapDynamics(objective="sum", schedule="random", seed=11).run(
            cycle_graph(9)
        )
        assert a.graph == b.graph
        assert a.steps == b.steps

    def test_edge_count_preserved_by_sum_dynamics(self):
        g = cycle_graph(10)
        res = SwapDynamics(objective="sum", seed=2).run(g)
        assert res.graph.m == g.m  # sum agents never delete

    def test_exhausted_distinguishes_budget_from_cycle(self):
        res = SwapDynamics(objective="sum", max_steps=1, seed=0).run(
            path_graph(12)
        )
        assert res.exhausted
        assert not res.converged and not res.cycle_detected
        done = SwapDynamics(objective="sum", seed=0).run(path_graph(12))
        assert done.converged and not done.exhausted


class TestPerRunRNG:
    """A second run() on the same instance must replay the seed (ISSUE 4)."""

    @pytest.mark.parametrize("schedule", ["random", "round_robin"])
    @pytest.mark.parametrize("responder", ["best", "first"])
    def test_two_runs_on_one_instance_identical(self, schedule, responder):
        g = random_connected_gnm(10, 16, seed=8)
        dyn = SwapDynamics(
            objective="sum", schedule=schedule, responder=responder,
            record=True, seed=11, max_steps=2000,
        )
        a = dyn.run(g)
        b = dyn.run(g)
        assert a.graph == b.graph
        assert a.steps == b.steps
        assert a.activations == b.activations
        assert a.moves == b.moves

    def test_rerun_matches_fresh_instance(self):
        g = random_connected_gnm(10, 16, seed=8)
        dyn = SwapDynamics(
            objective="sum", schedule="random", responder="first", seed=7
        )
        dyn.run(g)  # burn a run: must not perturb the next one
        again = dyn.run(g)
        fresh = SwapDynamics(
            objective="sum", schedule="random", responder="first", seed=7
        ).run(g)
        assert again.graph == fresh.graph
        assert again.moves == fresh.moves
        assert again.steps == fresh.steps

    def test_generator_seed_keeps_caller_owned_stream(self):
        # The documented opt-out: an explicit Generator is used as-is, so
        # successive runs continue one stream instead of replaying it.
        g = random_connected_gnm(10, 16, seed=8)
        rng = np.random.default_rng(3)
        dyn = SwapDynamics(
            objective="sum", schedule="random", responder="first", seed=rng
        )
        assert dyn.run(g).converged
        assert dyn.run(g).converged  # stream advanced; still reproducible
        # ... as a pair: replaying both runs from a fresh generator matches.
        rng2 = np.random.default_rng(3)
        dyn2 = SwapDynamics(
            objective="sum", schedule="random", responder="first", seed=rng2
        )
        assert dyn2.run(g).graph == SwapDynamics(
            objective="sum", schedule="random", responder="first",
            seed=np.random.default_rng(3),
        ).run(g).graph
        assert dyn2.run(g).converged


def _model_social_cost(graph, spec):
    model = resolve_cost_model(spec, graph.n)
    return model.social_cost(lift_distances(distance_matrix(graph)))


class TestModelCorrectTraces:
    """Traces must record the resolved model's social cost (ISSUE 4)."""

    VARIANTS = ["sum", "max", "interest-sum:k=3,seed=2", "budget-sum:cap=3"]

    @pytest.mark.parametrize("spec", VARIANTS)
    def test_trace_endpoints_are_model_social_costs(self, spec):
        g = random_connected_gnm(10, 16, seed=5)
        res = SwapDynamics(
            objective=spec, record=True, seed=3, max_steps=300
        ).run(g)
        trace = res.social_cost_trace
        assert trace[0] == _model_social_cost(g, spec)
        assert trace[-1] == _model_social_cost(res.graph, spec)

    @pytest.mark.parametrize("spec", VARIANTS)
    @pytest.mark.parametrize("schedule", ["round_robin", "random", "greedy"])
    def test_incremental_and_oracle_traces_agree(self, spec, schedule):
        g = random_connected_gnm(10, 16, seed=5)
        runs = [
            SwapDynamics(
                objective=spec, schedule=schedule, record=True, seed=3,
                max_steps=300, engine_mode=mode,
            ).run(g)
            for mode in ("incremental", "oracle")
        ]
        assert runs[0].moves == runs[1].moves
        assert runs[0].social_cost_trace == runs[1].social_cost_trace
        assert runs[0].diameter_trace == runs[1].diameter_trace

    def test_sum_trace_still_total_pairwise_distance(self):
        # The historical recording (bit-compatible for the paper's game).
        g = random_tree(12, seed=4)
        res = SwapDynamics(objective="sum", record=True, seed=0).run(g)
        assert res.social_cost_trace[0] == total_pairwise_distance(g)
        assert res.social_cost_trace[-1] == total_pairwise_distance(res.graph)

    def test_max_trace_is_sum_of_eccentricities(self):
        g = random_tree(12, seed=4)
        res = SwapDynamics(objective="max", record=True, seed=0).run(g)
        dm = lift_distances(distance_matrix(res.graph))
        assert res.social_cost_trace[-1] == float(dm.max(axis=1).sum())
        # ... which differs from the pairwise total the old code recorded.
        assert res.social_cost_trace[-1] != total_pairwise_distance(res.graph)

    def test_interest_trace_is_sum_of_agent_costs(self):
        spec = "interest-sum:k=3,seed=2"
        g = random_connected_gnm(10, 16, seed=5)
        res = SwapDynamics(objective=spec, record=True, seed=3).run(g)
        model = resolve_cost_model(spec, 10)
        dm = lift_distances(distance_matrix(res.graph))
        expected = sum(model.row_cost(v, dm[v]) for v in range(10))
        assert res.social_cost_trace[-1] == expected
        assert not math.isinf(expected)


class TestBatchedEngineMode:
    """engine_mode="batched" must be bit-identical to "incremental" (ISSUE 5).

    Same moves, steps, activations, traces, and terminal graph: the batched
    mode changes how a best response is computed (bound-then-verify kernel)
    and how a sweep certifies (one cross-edge audit scan), never which move
    is applied.
    """

    VARIANTS = ["sum", "max", "interest-sum:k=3,seed=2", "budget-sum:cap=3"]

    @pytest.mark.parametrize("spec", VARIANTS)
    @pytest.mark.parametrize("schedule", ["round_robin", "random", "greedy"])
    @pytest.mark.parametrize("responder", ["best", "first"])
    def test_batched_bit_identical_to_incremental(
        self, spec, schedule, responder
    ):
        g = random_connected_gnm(12, 20, seed=5)
        runs = [
            SwapDynamics(
                objective=spec, schedule=schedule, responder=responder,
                record=True, seed=3, max_steps=400, engine_mode=mode,
            ).run(g)
            for mode in ("incremental", "batched")
        ]
        a, b = runs
        assert a.moves == b.moves
        assert a.steps == b.steps
        assert a.activations == b.activations
        assert a.social_cost_trace == b.social_cost_trace
        assert a.diameter_trace == b.diameter_trace
        assert a.graph == b.graph
        assert (a.converged, a.cycle_detected) == (
            b.converged, b.cycle_detected
        )

    @pytest.mark.parametrize("spec", VARIANTS)
    @pytest.mark.parametrize("schedule", ["round_robin", "greedy"])
    def test_batched_matches_oracle_traces(self, spec, schedule):
        g = random_connected_gnm(10, 16, seed=5)
        runs = [
            SwapDynamics(
                objective=spec, schedule=schedule, record=True, seed=3,
                max_steps=300, engine_mode=mode,
            ).run(g)
            for mode in ("batched", "oracle")
        ]
        assert runs[0].moves == runs[1].moves
        assert runs[0].social_cost_trace == runs[1].social_cost_trace
        assert runs[0].diameter_trace == runs[1].diameter_trace
        assert runs[0].graph == runs[1].graph

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_stale_certificates_never_survive_to_convergence(self, seed):
        # The dirty-set/bound-certificate interaction: certificates go
        # stale whenever an applied swap touches their inputs, and the
        # batched verification sweep is exact — so a converged endpoint
        # must pass the seed rebuild-mode audit, whatever the certificate
        # bookkeeping did mid-run.
        from repro.core import is_equilibrium

        g = random_connected_gnm(14, 24, seed=seed)
        res = SwapDynamics(
            objective="sum", seed=seed, engine_mode="batched"
        ).run(g)
        if res.converged:
            assert is_equilibrium(res.graph, "sum", mode="rebuild")
            # ... and the certified equilibrium is a true fixed point.
            again = SwapDynamics(
                objective="sum", seed=seed, engine_mode="batched"
            ).run(res.graph)
            assert again.steps == 0 and again.converged

    def test_certificate_invalidated_by_neighbour_move(self):
        # A vertex certified move-free must be re-examined once another
        # agent's swap changes its distance landscape: drive the engine by
        # hand and check the kernel sees the new improving move.
        from repro.core import DistanceEngine

        g = path_graph(8)
        engine = DistanceEngine(g)
        quiet = [
            v for v in range(8)
            if engine.best_swap(v, "sum", mode="batched").swap is None
        ]
        mover = next(
            v for v in range(8)
            if engine.best_swap(v, "sum", mode="batched").swap is not None
        )
        br = engine.best_swap(mover, "sum", mode="batched")
        engine.apply_swap(br.swap)
        # Every response is recomputed against the *current* matrix — a
        # previously quiet vertex with a new improving move must find it.
        from repro.core import best_swap as plain_best_swap

        for v in quiet:
            now = engine.best_swap(v, "sum", mode="batched")
            oracle = plain_best_swap(engine.graph, v, "sum", mode="oracle")
            assert (now.swap, now.before, now.after) == (
                oracle.swap, oracle.before, oracle.after
            ), v

    def test_final_dm_matches_final_graph(self):
        g = random_tree(12, seed=6)
        for mode in ("incremental", "batched"):
            res = SwapDynamics(
                objective="sum", seed=1, engine_mode=mode
            ).run(g)
            assert res.final_dm is not None
            expected = lift_distances(distance_matrix(res.graph))
            assert np.array_equal(res.final_dm, expected)
        oracle = SwapDynamics(
            objective="sum", seed=1, engine_mode="oracle"
        ).run(g)
        assert oracle.final_dm is None

    def test_unknown_engine_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(engine_mode="clairvoyant")
