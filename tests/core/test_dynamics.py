"""Dynamics engine tests: convergence, schedules, instrumentation."""

import pytest

from repro.errors import ConfigurationError, DisconnectedGraphError
from repro.core import (
    SwapDynamics,
    is_max_equilibrium,
    is_sum_equilibrium,
)
from repro.graphs import CSRGraph, cycle_graph, path_graph, random_tree
from repro.theory import is_star


class TestConfiguration:
    def test_bad_objective(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(objective="median")

    def test_bad_schedule(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(schedule="chaotic")

    def test_bad_responder(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(responder="psychic")

    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(max_steps=0)

    def test_disconnected_start_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            SwapDynamics().run(CSRGraph(3, [(0, 1)]))


class TestSumConvergence:
    def test_tree_converges_to_star(self):
        # Theorem 1 in motion: swaps preserve the edge count and cannot
        # disconnect, so trees stay trees and must end at the star.
        res = SwapDynamics(objective="sum", seed=0).run(random_tree(14, seed=2))
        assert res.converged
        assert is_star(res.graph)
        assert is_sum_equilibrium(res.graph)

    def test_path_converges(self):
        res = SwapDynamics(objective="sum", seed=1).run(path_graph(10))
        assert res.converged
        assert is_sum_equilibrium(res.graph)

    def test_equilibrium_input_is_fixed_point(self):
        from repro.graphs import star_graph

        g = star_graph(8)
        res = SwapDynamics(objective="sum", seed=0).run(g)
        assert res.converged
        assert res.steps == 0
        assert res.graph == g

    @pytest.mark.parametrize("schedule", ["round_robin", "random", "greedy"])
    def test_all_schedules_converge_on_small_tree(self, schedule):
        res = SwapDynamics(
            objective="sum", schedule=schedule, seed=7
        ).run(random_tree(10, seed=3))
        assert res.converged
        assert is_sum_equilibrium(res.graph)

    @pytest.mark.parametrize("responder", ["best", "first"])
    def test_both_responders_converge(self, responder):
        res = SwapDynamics(
            objective="sum", responder=responder, seed=9, max_steps=5000
        ).run(cycle_graph(8))
        assert res.converged
        assert is_sum_equilibrium(res.graph)


class TestMaxConvergence:
    def test_max_dynamics_reach_max_equilibrium(self):
        res = SwapDynamics(objective="max", seed=4).run(random_tree(10, seed=6))
        assert res.converged
        # Best-responder max dynamics apply neutral deletions, so the
        # terminal graph satisfies the full definition incl. criticality.
        assert is_max_equilibrium(res.graph)

    def test_extraneous_chord_gets_deleted(self):
        g = cycle_graph(6).with_edges(add=[(0, 2)])
        res = SwapDynamics(objective="max", seed=0).run(g)
        assert res.converged
        assert is_max_equilibrium(res.graph)
        assert res.graph.m < g.m  # something extraneous was dropped


class TestInstrumentation:
    def test_traces_recorded(self):
        res = SwapDynamics(objective="sum", record=True, seed=0).run(
            path_graph(8)
        )
        assert len(res.moves) == res.steps
        # One snapshot at start plus one per applied move.
        assert len(res.diameter_trace) == res.steps + 1
        assert len(res.social_cost_trace) == res.steps + 1

    def test_traces_absent_without_recording(self):
        res = SwapDynamics(objective="sum", record=False, seed=0).run(
            path_graph(8)
        )
        assert res.moves == []

    def test_budget_exhaustion_reported(self):
        res = SwapDynamics(objective="sum", max_steps=1, seed=0).run(
            path_graph(12)
        )
        assert not res.converged
        assert res.steps == 1

    def test_determinism(self):
        a = SwapDynamics(objective="sum", schedule="random", seed=11).run(
            cycle_graph(9)
        )
        b = SwapDynamics(objective="sum", schedule="random", seed=11).run(
            cycle_graph(9)
        )
        assert a.graph == b.graph
        assert a.steps == b.steps

    def test_edge_count_preserved_by_sum_dynamics(self):
        g = cycle_graph(10)
        res = SwapDynamics(objective="sum", seed=2).run(g)
        assert res.graph.m == g.m  # sum agents never delete
