"""Usage cost tests."""

import math

import numpy as np

from repro.core import INT_INF, lift_distances, local_diameter, sum_cost
from repro.core.costs import local_diameter_vector, sum_cost_vector
from repro.graphs import (
    CSRGraph,
    UNREACHABLE,
    cycle_graph,
    distance_matrix,
    path_graph,
    star_graph,
)


class TestScalarCosts:
    def test_star_center_and_leaf(self):
        g = star_graph(6)
        assert sum_cost(g, 0) == 5
        assert sum_cost(g, 1) == 1 + 2 * 4
        assert local_diameter(g, 0) == 1
        assert local_diameter(g, 3) == 2

    def test_path_end(self):
        g = path_graph(5)
        assert sum_cost(g, 0) == 1 + 2 + 3 + 4
        assert local_diameter(g, 0) == 4
        assert local_diameter(g, 2) == 2

    def test_disconnected_is_inf(self):
        g = CSRGraph(4, [(0, 1)])
        assert sum_cost(g, 0) == math.inf
        assert local_diameter(g, 0) == math.inf


class TestVectorCosts:
    def test_matches_scalars(self):
        g = cycle_graph(7)
        sums = sum_cost_vector(g)
        eccs = local_diameter_vector(g)
        for v in range(g.n):
            assert sums[v] == sum_cost(g, v)
            assert eccs[v] == local_diameter(g, v)

    def test_disconnected_vector(self):
        g = CSRGraph(3, [(0, 1)])
        assert all(math.isinf(x) for x in sum_cost_vector(g))
        assert all(math.isinf(x) for x in local_diameter_vector(g))

    def test_empty_graph(self):
        g = CSRGraph(0, [])
        assert sum_cost_vector(g).size == 0


class TestLiftDistances:
    def test_unreachable_becomes_int_inf(self):
        g = CSRGraph(3, [(0, 1)])
        dm = distance_matrix(g)
        lifted = lift_distances(dm)
        assert lifted[0, 2] == INT_INF
        assert lifted[0, 1] == 1

    def test_headroom(self):
        # INT_INF + 1 summed n times must stay below int64 overflow for the
        # largest n the library targets.
        n = 1 << 20
        assert (INT_INF + 1) * n < np.iinfo(np.int64).max

    def test_original_untouched(self):
        g = CSRGraph(3, [(0, 1)])
        dm = distance_matrix(g)
        lift_distances(dm)
        assert dm[0, 2] == UNREACHABLE
