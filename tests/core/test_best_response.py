"""Best-response computation tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import best_swap, find_sum_violation, first_improving_swap, sum_cost
from repro.core.moves import Swap
from repro.graphs import CSRGraph, cycle_graph, path_graph, star_graph

from ..conftest import connected_graphs


class TestBestSwap:
    def test_no_move_at_equilibrium(self):
        g = star_graph(7)
        for v in range(g.n):
            br = best_swap(g, v, "sum")
            assert br.swap is None
            assert br.improvement == 0.0

    def test_path_end_moves_to_center(self):
        g = path_graph(7)
        br = best_swap(g, 0, "sum")
        assert br.swap is not None
        assert br.after < br.before
        # The optimal relocation target for an end leaf is the tree median.
        assert br.swap.add == 3

    def test_best_is_at_least_first(self):
        g = cycle_graph(9)
        for v in range(g.n):
            best = best_swap(g, v, "sum")
            first = first_improving_swap(g, v, "sum", seed=1)
            assert best.improvement >= first.improvement

    @given(connected_graphs(min_n=3, max_n=10), st.integers(0, 9))
    @settings(max_examples=40, deadline=None)
    def test_best_swap_is_exact(self, g, v):
        # Exhaustive comparison against copy-mode evaluation of every swap.
        from repro.core import swap_cost_after

        v = v % g.n
        br = best_swap(g, v, "sum", prefer_deletions_on_tie=False)
        best_direct = math.inf
        for w in map(int, g.neighbors(v)):
            for w2 in range(g.n):
                if w2 in (v, w):
                    continue
                c = swap_cost_after(g, Swap(v, w, w2), "sum", "copy")
                best_direct = min(best_direct, c)
        base = sum_cost(g, v)
        if best_direct < base:
            assert br.swap is not None
            assert br.after == best_direct
        else:
            assert br.swap is None


class TestDeletionTieBreaking:
    def test_extraneous_edge_deleted_under_max(self):
        # C6 plus a long chord: the chord does not change the endpoint
        # eccentricities, so max agents prefer deleting it.
        g = cycle_graph(6).with_edges(add=[(0, 2)])
        br = best_swap(g, 0, "max")
        assert br.swap is not None
        assert br.is_deletion

    def test_sum_agents_never_delete(self):
        g = cycle_graph(6).with_edges(add=[(0, 2)])
        br = best_swap(g, 0, "sum")
        # Deleting strictly increases the mover's sum, so either no move or
        # a relocation.
        if br.swap is not None:
            assert not br.is_deletion


class TestFirstImproving:
    def test_finds_improvement_when_one_exists(self):
        g = path_graph(8)
        assert find_sum_violation(g) is not None
        br = first_improving_swap(g, 0, "sum", seed=3)
        assert br.swap is not None
        assert br.after < br.before

    def test_none_at_equilibrium(self):
        g = star_graph(6)
        for v in range(g.n):
            assert first_improving_swap(g, v, "sum", seed=0).swap is None

    def test_deterministic_given_seed(self):
        g = cycle_graph(10)
        a = first_improving_swap(g, 0, "sum", seed=42)
        b = first_improving_swap(g, 0, "sum", seed=42)
        assert a.swap == b.swap

    def test_reported_costs_match_application(self):
        from repro.core import swapped_graph

        g = cycle_graph(10)
        br = first_improving_swap(g, 0, "sum", seed=5)
        assert br.swap is not None
        g2 = swapped_graph(g, br.swap)
        assert sum_cost(g2, 0) == br.after
