"""DistanceEngine cross-validation: the fast paths vs the seed oracles.

Every fast path introduced by the incremental engine — removal matrices,
engine-backed best responses, repair-mode audits, parallel audits, and the
incrementally maintained matrix inside the dynamics loop — is compared here
against the corresponding rebuild/copy oracle on the deterministic battery
(trees, sparse and dense G(n, m), bridges, n ≤ 3) plus targeted scenarios.
Agreement must be exact, tie-breaking included.
"""

import math

import numpy as np
import pytest

from repro.core import (
    DistanceEngine,
    SwapDynamics,
    Swap,
    best_swap,
    find_max_swap_violation,
    find_sum_violation,
    is_sum_equilibrium,
    removal_distance_matrix,
    sum_equilibrium_gap,
)
from repro.core.costs import lift_distances
from repro.core.equilibrium import find_deletion_criticality_violation
from repro.errors import ConfigurationError
from repro.graphs import (
    CSRGraph,
    cycle_graph,
    distance_matrix,
    path_graph,
    random_connected_gnm,
    random_tree,
    star_graph,
)

from ..conftest import graph_battery

BATTERY = graph_battery()


class TestRemovalMatrix:
    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 2))
    def test_engine_matches_rebuild_oracle(self, idx):
        g = BATTERY[idx]
        engine = DistanceEngine(g)
        for edge in g.iter_edges():
            oracle = removal_distance_matrix(g, edge, mode="rebuild")
            assert np.array_equal(engine.removal_matrix(*edge), oracle)

    def test_default_mode_is_repair_and_agrees(self):
        g = random_connected_gnm(12, 20, seed=3)
        for edge in list(g.iter_edges())[:5]:
            assert np.array_equal(
                removal_distance_matrix(g, edge),
                removal_distance_matrix(g, edge, mode="rebuild"),
            )

    def test_precomputed_base_dm_accepted(self):
        g = cycle_graph(9)
        base = distance_matrix(g)
        edge = (0, 8)
        assert np.array_equal(
            removal_distance_matrix(g, edge, base_dm=base),
            removal_distance_matrix(g, edge, mode="rebuild"),
        )

    def test_unknown_mode_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            removal_distance_matrix(g, (0, 1), mode="telepathy")


def _responses_equal(a, b) -> bool:
    return (
        a.swap == b.swap
        and a.before == b.before
        and a.after == b.after
        and a.is_deletion == b.is_deletion
    )


class TestBestSwap:
    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 3))
    @pytest.mark.parametrize("objective", ["sum", "max"])
    def test_all_modes_agree(self, idx, objective):
        g = BATTERY[idx]
        if g.n < 2:
            return
        engine = DistanceEngine(g)
        for v in range(min(g.n, 5)):
            oracle = best_swap(g, v, objective, mode="oracle")
            repair = best_swap(g, v, objective, mode="repair")
            via_engine = engine.best_swap(v, objective)
            assert _responses_equal(oracle, repair), (g.edges().tolist(), v)
            assert _responses_equal(oracle, via_engine), (g.edges().tolist(), v)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            best_swap(path_graph(4), 0, mode="psychic")


class TestAuditModes:
    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 2))
    def test_sum_violation_repair_equals_rebuild(self, idx):
        g = BATTERY[idx]
        fast = find_sum_violation(g, mode="repair")
        slow = find_sum_violation(g, mode="rebuild")
        assert fast == slow, g.edges().tolist()

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 5))
    def test_max_violation_repair_equals_rebuild(self, idx):
        g = BATTERY[idx]
        fast = find_max_swap_violation(g, mode="repair")
        slow = find_max_swap_violation(g, mode="rebuild")
        assert fast == slow, g.edges().tolist()

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 7))
    def test_gap_and_criticality_agree(self, idx):
        g = BATTERY[idx]
        assert sum_equilibrium_gap(g, mode="repair") == pytest.approx(
            sum_equilibrium_gap(g, mode="rebuild")
        )
        assert find_deletion_criticality_violation(
            g, mode="repair"
        ) == find_deletion_criticality_violation(g, mode="rebuild")


class TestParallelAudits:
    # One spawn-heavy test per audit keeps the suite responsive; determinism
    # across worker counts is the contract under test.
    def test_violation_identical_across_worker_counts(self):
        g = random_connected_gnm(14, 24, seed=8)
        serial = find_sum_violation(g, workers=1)
        parallel = find_sum_violation(g, workers=2)
        assert serial == parallel
        assert serial is not None  # a random graph this dense is not at rest

    def test_equilibrium_verdict_with_workers(self):
        g = star_graph(9)
        assert is_sum_equilibrium(g, workers=2)
        assert is_sum_equilibrium(g, workers=1)

    def test_gap_with_workers(self):
        g = random_connected_gnm(12, 18, seed=5)
        assert sum_equilibrium_gap(g, workers=2) == pytest.approx(
            sum_equilibrium_gap(g, workers=1)
        )


class TestIncrementalApply:
    def _random_legal_swap(self, adj, rng) -> Swap | None:
        n = adj.n
        for _ in range(50):
            v = int(rng.integers(0, n))
            nbrs = sorted(adj.neighbors(v))
            if not nbrs:
                continue
            w = int(rng.choice(nbrs))
            add = int(rng.integers(0, n))
            if add in (v, w):
                continue
            return Swap(v, w, add)
        return None

    @pytest.mark.parametrize("seed", range(12))
    def test_matrix_stays_exact_across_swap_sequences(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 14))
        g = (
            random_tree(n, seed + 100)
            if seed % 2
            else random_connected_gnm(
                n, min(n * (n - 1) // 2, 2 * n), seed + 100
            )
        )
        engine = DistanceEngine(g)
        for _ in range(8):
            swap = self._random_legal_swap(engine.adjacency, rng)
            if swap is None:
                break
            before = engine.dm.copy()
            changed = engine.apply_swap(swap)
            fresh = lift_distances(distance_matrix(engine.graph))
            assert np.array_equal(engine.dm, fresh)
            # soundness of the changed-row mask: unflagged rows unchanged
            quiet = ~changed
            assert np.array_equal(engine.dm[quiet], before[quiet])

    def test_pure_deletion_swap(self):
        g = cycle_graph(6).with_edges(add=[(0, 2)])
        engine = DistanceEngine(g)
        engine.apply_swap(Swap(0, 2, 1))  # add == existing neighbour: delete
        assert engine.graph.m == g.m - 1
        assert np.array_equal(
            engine.dm, lift_distances(distance_matrix(engine.graph))
        )

    def test_disconnecting_then_reconnecting_swap(self):
        g = path_graph(6)
        engine = DistanceEngine(g)
        engine.apply_swap(Swap(0, 1, 5))  # relocate the end edge
        assert engine.is_connected()
        assert np.array_equal(
            engine.dm, lift_distances(distance_matrix(engine.graph))
        )

    def test_cost_views(self):
        g = star_graph(7)
        engine = DistanceEngine(g)
        dm = lift_distances(distance_matrix(g))
        assert engine.cost(0, "sum") == float(dm[0].sum())
        assert engine.cost(1, "max") == float(dm[1].max())
        assert np.array_equal(engine.sum_costs(), dm.sum(axis=1))
        assert np.array_equal(engine.eccentricities(), dm.max(axis=1))

    def test_rejects_non_graph(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            DistanceEngine([(0, 1)])


class TestDynamicsEngineModes:
    @pytest.mark.parametrize("schedule", ["round_robin", "random", "greedy"])
    def test_incremental_reaches_verified_equilibrium(self, schedule):
        g = random_tree(12, seed=4)
        res = SwapDynamics(
            objective="sum", schedule=schedule, seed=2
        ).run(g)
        assert res.converged
        assert is_sum_equilibrium(res.graph, mode="rebuild")

    @pytest.mark.parametrize("objective", ["sum", "max"])
    def test_oracle_and_incremental_agree_on_equilibria(self, objective):
        from repro.core import is_max_equilibrium

        g = random_connected_gnm(10, 14, seed=6)
        check = is_sum_equilibrium if objective == "sum" else is_max_equilibrium
        for mode in ("incremental", "oracle"):
            res = SwapDynamics(
                objective=objective, seed=1, engine_mode=mode
            ).run(g)
            assert res.converged
            assert check(res.graph)

    def test_incremental_is_deterministic(self):
        g = cycle_graph(9)
        a = SwapDynamics(objective="sum", schedule="random", seed=11).run(g)
        b = SwapDynamics(objective="sum", schedule="random", seed=11).run(g)
        assert a.graph == b.graph
        assert a.steps == b.steps
        assert a.activations == b.activations

    def test_fixed_point_applies_no_moves(self):
        g = star_graph(8)
        res = SwapDynamics(objective="sum", seed=0).run(g)
        assert res.converged
        assert res.steps == 0
        assert res.graph == g

    def test_recording_traces_match_oracle_lengths(self):
        g = path_graph(8)
        inc = SwapDynamics(objective="sum", record=True, seed=0).run(g)
        assert len(inc.moves) == inc.steps
        assert len(inc.diameter_trace) == inc.steps + 1
        assert len(inc.social_cost_trace) == inc.steps + 1
        assert inc.social_cost_trace[-1] <= inc.social_cost_trace[0]
        assert all(math.isfinite(x) for x in inc.social_cost_trace)

    def test_unknown_engine_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics(engine_mode="quantum")
