"""Swap evaluation tests: patched == copy == vectorized min-plus closure."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Swap,
    all_swap_costs_for_drop,
    removal_distance_matrix,
    swap_cost_after,
    swap_delta,
)
from repro.core.costs import INT_INF
from repro.graphs import CSRGraph, cycle_graph, path_graph, star_graph

from ..conftest import connected_graphs


class TestSwapCostAfter:
    def test_known_improvement_on_path(self):
        # End vertex of P4 swaps its edge to the far end: 0-1-2-3 becomes
        # 1-2-3 with 0 attached to 3.
        g = path_graph(4)
        after = swap_cost_after(g, Swap(0, 1, 3), "sum")
        assert after == 1 + 2 + 3  # distances to 3,2,1

    def test_disconnecting_swap_is_inf(self):
        g = path_graph(4)
        # Vertex 1 drops its edge to 2 and "adds" an edge back to 0's side:
        # component {0,1} splits off.
        assert swap_cost_after(g, Swap(1, 2, 0), "sum") == math.inf

    def test_max_objective(self):
        g = path_graph(5)
        # End vertex hooks onto the center: ecc 4 -> 3 (0-2-3-4 is longest).
        assert swap_cost_after(g, Swap(0, 1, 2), "max") == 3

    @given(connected_graphs(max_n=12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_patched_equals_copy(self, g, data):
        v = data.draw(st.integers(0, g.n - 1))
        nbrs = [int(x) for x in g.neighbors(v)]
        if not nbrs:
            return
        w = data.draw(st.sampled_from(nbrs))
        w2 = data.draw(st.integers(0, g.n - 1))
        if w2 in (v, w):
            return
        swap = Swap(v, w, w2)
        for objective in ("sum", "max"):
            assert swap_cost_after(g, swap, objective, "patched") == (
                swap_cost_after(g, swap, objective, "copy")
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            swap_cost_after(path_graph(3), Swap(0, 1, 2), "sum", "telepathy")


class TestSwapDelta:
    def test_improving_negative(self):
        g = path_graph(5)
        assert swap_delta(g, Swap(0, 1, 2), "sum") < 0

    def test_star_leaf_swap_nonnegative(self):
        g = star_graph(6)
        # Leaf 1 relocating its only edge to another leaf: strictly worse.
        assert swap_delta(g, Swap(1, 0, 2), "sum") > 0


class TestVectorizedClosure:
    @given(connected_graphs(min_n=3, max_n=12), st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_direct_eval_for_all_targets(self, g, data):
        v = data.draw(st.integers(0, g.n - 1))
        nbrs = [int(x) for x in g.neighbors(v)]
        if not nbrs:
            return
        w = data.draw(st.sampled_from(nbrs))
        for objective in ("sum", "max"):
            costs = all_swap_costs_for_drop(g, v, w, objective)
            for w2 in range(g.n):
                if w2 == v:
                    assert costs[w2] == math.inf
                    continue
                if w2 == w:
                    continue  # identity slot: value is the base cost
                direct = swap_cost_after(g, Swap(v, w, w2), objective, "copy")
                assert costs[w2] == direct

    def test_identity_slot_holds_base_cost(self):
        g = cycle_graph(6)
        from repro.core import sum_cost

        costs = all_swap_costs_for_drop(g, 0, 1, "sum")
        assert costs[1] == sum_cost(g, 0)

    def test_deletion_slots_equal_removal_cost(self):
        # Swapping onto another existing neighbour = deleting the edge.
        g = cycle_graph(5)
        costs = all_swap_costs_for_drop(g, 0, 1, "sum")
        removal = removal_distance_matrix(g, (0, 1))
        expected = float(removal[0].sum())
        assert costs[4] == expected  # 4 is 0's other neighbour

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            all_swap_costs_for_drop(path_graph(3), 0, 1, "median")


class TestRemovalMatrix:
    def test_bridge_removal_inf_blocks(self):
        g = path_graph(4)
        dm = removal_distance_matrix(g, (1, 2))
        assert dm[0, 3] >= INT_INF
        assert dm[0, 1] == 1

    def test_cycle_removal_finite(self):
        g = cycle_graph(6)
        dm = removal_distance_matrix(g, (0, 1))
        assert dm.max() < INT_INF
        assert dm[0, 1] == 5  # the long way around
