"""Cost-model layer tests: alias bit-identity, variant oracles, move masks.

Three guarantees under test:

1. **Alias bit-identity** — ``objective="sum"|"max"`` strings, the
   ``SumCost``/``MaxCost`` singletons they resolve to, and the historical
   call sites all agree exactly (costs, tie-breaks, record order) on the
   deterministic graph battery, in every audit mode.
2. **Variant exactness** — ``InterestCost`` and ``BudgetCost`` agree with an
   independent brute-force evaluation (copied swapped graphs, BFS rows,
   manual aggregation), and their batched/repair/rebuild audits agree.
3. **Reachability** — both variants run end-to-end through dynamics and
   ``run_census`` and their converged endpoints pass the model-aware
   equilibrium audit.
"""

import math

import numpy as np
import pytest

from repro.core import (
    BudgetCost,
    InterestCost,
    MaxCost,
    SumCost,
    SwapDynamics,
    all_swap_costs_for_drop,
    best_swap,
    cost_model_spec,
    find_sum_violation,
    find_swap_violation,
    interest_sets,
    is_equilibrium,
    is_max_equilibrium,
    is_sum_equilibrium,
    legal_add_targets,
    parse_cost_spec,
    resolve_cost_model,
    run_census,
)
from repro.core.costmodel import MAX_COST, SUM_COST
from repro.core.moves import Swap, swapped_graph
from repro.errors import ConfigurationError
from repro.graphs import (
    CSRGraph,
    bfs_distances,
    path_graph,
    random_connected_gnm,
    random_tree,
    star_graph,
)
from repro.graphs.bfs import UNREACHABLE

from ..conftest import graph_battery

BATTERY = graph_battery()

INTEREST_SPEC = "interest-sum:k=3,seed=7"
BUDGET_SPEC = "budget-sum:cap=3"


# ---------------------------------------------------------------------------
# Spec parsing / resolution
# ---------------------------------------------------------------------------

class TestSpecs:
    def test_sum_max_resolve_to_singletons(self):
        assert resolve_cost_model("sum") is SUM_COST
        assert resolve_cost_model("max") is MAX_COST
        assert resolve_cost_model(SUM_COST, 9) is SUM_COST

    def test_canonical_spec_roundtrip(self):
        assert cost_model_spec("sum") == "sum"
        # Parameter order is canonicalized.
        assert (
            cost_model_spec("interest-sum:seed=2,k=3")
            == "interest-sum:k=3,seed=2"
        )
        model = resolve_cost_model("interest-max:k=2", 8)
        assert model.spec == "interest-max:k=2,seed=0"
        assert resolve_cost_model(model.spec, 8).spec == model.spec
        assert cost_model_spec(BudgetCost("max", 4)) == "budget-max:cap=4"

    def test_unknown_spec_rejected_as_both_error_types(self):
        for bad in ("median", "interest", "budget-sum", "sum:k=3",
                    "interest-sum:k=x", "interest-sum:cap=3",
                    "budget-sum:cap=0", "interest-sum:k=0"):
            with pytest.raises(ConfigurationError):
                parse_cost_spec(bad)
            with pytest.raises(ValueError):  # ConfigurationError is one
                parse_cost_spec(bad)

    def test_interest_needs_n(self):
        with pytest.raises(ConfigurationError):
            resolve_cost_model("interest-sum:k=3")

    def test_interest_wrong_n_rejected(self):
        model = resolve_cost_model("interest-sum:k=3", 8)
        with pytest.raises(ConfigurationError):
            resolve_cost_model(model, 9)

    def test_budget_cap_validated(self):
        with pytest.raises(ConfigurationError):
            BudgetCost("sum", 0)

    def test_interest_sets_shape_and_determinism(self):
        w = interest_sets(12, 4, seed=3)
        assert w.shape == (12, 12)
        assert not w.diagonal().any()  # no self-interest
        assert (w.sum(axis=1) == 4).all()
        assert np.array_equal(w, interest_sets(12, 4, seed=3))
        assert not np.array_equal(w, interest_sets(12, 4, seed=4))
        # k larger than n-1 saturates.
        assert (interest_sets(5, 99, seed=0).sum(axis=1) == 4).all()

    def test_model_equality_by_spec(self):
        assert SumCost() == SUM_COST
        assert BudgetCost("sum", 3) == BudgetCost("sum", 3)
        assert BudgetCost("sum", 3) != BudgetCost("sum", 4)


# ---------------------------------------------------------------------------
# Alias bit-identity on the battery
# ---------------------------------------------------------------------------

class TestAliasBitIdentity:
    """Model objects and objective strings must be indistinguishable."""

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 7))
    def test_swap_violation_matches_sum_audit(self, idx):
        g = BATTERY[idx]
        for mode in ("repair", "batched"):
            assert find_swap_violation(
                g, SumCost(), mode=mode
            ) == find_sum_violation(g, mode=mode)

    @pytest.mark.parametrize("idx", range(3, len(BATTERY), 17))
    def test_swap_violation_matches_rebuild_oracle(self, idx):
        g = BATTERY[idx]
        assert find_swap_violation(
            g, "sum", mode="rebuild"
        ) == find_sum_violation(g, mode="rebuild")

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 11))
    def test_is_equilibrium_matches_max_audit(self, idx):
        g = BATTERY[idx]
        assert is_equilibrium(g, "max") == is_max_equilibrium(g)
        assert is_equilibrium(g, MaxCost(), mode="batched") == (
            is_max_equilibrium(g, mode="batched")
        )
        assert is_equilibrium(g, "sum") == is_sum_equilibrium(g)

    @pytest.mark.parametrize("idx", range(1, len(BATTERY), 13))
    def test_best_swap_model_vs_string(self, idx):
        g = BATTERY[idx]
        if g.n < 2:
            return
        for v in range(0, g.n, 3):
            for obj, model in (("sum", SumCost()), ("max", MaxCost())):
                a = best_swap(g, v, obj)
                b = best_swap(g, v, model)
                assert (a.swap, a.before, a.after, a.is_deletion) == (
                    b.swap, b.before, b.after, b.is_deletion
                )

    def test_dynamics_model_vs_string(self):
        for seed in (1, 5):
            g = random_connected_gnm(14, 24, seed=seed)
            a = SwapDynamics(objective="max", seed=3).run(g)
            b = SwapDynamics(objective=MaxCost(), seed=3).run(g)
            assert a.graph == b.graph
            assert (a.steps, a.activations, a.converged) == (
                b.steps, b.activations, b.converged
            )

    def test_census_records_model_vs_string(self, tmp_path):
        kwargs = dict(
            n_values=[8], families=("tree", "sparse"), replicates=2,
            root_seed=5,
        )
        a = run_census(objective="sum", **kwargs)
        b = run_census(objective=SumCost(), **kwargs)
        assert a == b
        assert all(r.objective == "sum" for r in b)


# ---------------------------------------------------------------------------
# Brute-force oracle for the variant evaluations
# ---------------------------------------------------------------------------

def _brute_cost(graph: CSRGraph, v: int, model) -> float:
    """Independent evaluation: plain BFS row + manual aggregation."""
    row = bfs_distances(graph, v)
    if (row == UNREACHABLE).any():
        return math.inf
    row = row.astype(np.int64)
    if isinstance(model, InterestCost):
        sel = row[model.weights[v]]
        if sel.size == 0:
            return 0.0
        return float(sel.sum() if model.kind == "sum" else sel.max())
    return float(row.sum() if model.kind == "sum" else row.max())


def _brute_swap_costs(graph: CSRGraph, v: int, w: int, model) -> np.ndarray:
    """Swap costs for every target via copied swapped graphs."""
    costs = np.full(graph.n, math.inf)
    for w2 in range(graph.n):
        if w2 in (v, w):
            continue
        g2 = swapped_graph(graph, Swap(v, w, w2))
        costs[w2] = _brute_cost(g2, v, model)
    return costs


class TestVariantOracle:
    @pytest.mark.parametrize("idx", range(2, len(BATTERY), 23))
    @pytest.mark.parametrize("kind", ["sum", "max"])
    def test_interest_swap_costs_match_brute_force(self, idx, kind):
        g = BATTERY[idx]
        if g.n < 3:
            return
        model = resolve_cost_model(f"interest-{kind}:k=2,seed=11", g.n)
        for v in range(0, g.n, 4):
            for w in map(int, g.neighbors(v)[:2]):
                costs = all_swap_costs_for_drop(g, v, w, model)
                brute = _brute_swap_costs(g, v, w, model)
                brute[v] = math.inf
                brute[w] = math.inf
                costs = costs.copy()
                costs[w] = math.inf
                assert np.array_equal(costs, brute), (v, w)

    @pytest.mark.parametrize("idx", range(4, len(BATTERY), 19))
    def test_interest_audit_modes_agree(self, idx):
        g = BATTERY[idx]
        model = resolve_cost_model("interest-sum:k=2,seed=5", g.n)
        repair = find_swap_violation(g, model, mode="repair")
        assert find_swap_violation(g, model, mode="batched") == repair
        assert find_swap_violation(g, model, mode="rebuild") == repair

    @pytest.mark.parametrize("idx", range(5, len(BATTERY), 19))
    def test_budget_audit_modes_agree(self, idx):
        g = BATTERY[idx]
        model = BudgetCost("sum", 3)
        repair = find_swap_violation(g, model, mode="repair")
        assert find_swap_violation(g, model, mode="batched") == repair
        assert find_swap_violation(g, model, mode="rebuild") == repair

    @pytest.mark.parametrize("mode", ["repair", "batched"])
    def test_interest_audit_workers_agree(self, mode):
        g = random_connected_gnm(14, 26, seed=4)
        model = resolve_cost_model("interest-sum:k=3,seed=2", g.n)
        serial = find_swap_violation(g, model, mode=mode)
        assert find_swap_violation(g, model, workers=4, mode=mode) == serial

    def test_interest_weights_ride_shared_memory_not_payloads(self):
        # Chunk payloads are pickled per chunk; the (n, n) weight matrix
        # must go through the shared-array channel instead (DESIGN.md §5).
        import pickle

        from repro.core.equilibrium import _attach_model, _detach_model

        model = resolve_cost_model("interest-sum:k=3,seed=2", 64)
        stub, arrays = _detach_model(model)
        assert "cmw" in arrays and arrays["cmw"] is model.weights
        assert len(pickle.dumps(stub)) < 200  # spec-sized, not matrix-sized
        rebuilt = _attach_model(stub, arrays)
        assert rebuilt.spec == model.spec
        assert np.array_equal(rebuilt.weights, model.weights)
        # Plain models pass through untouched.
        stub2, arrays2 = _detach_model(BudgetCost("sum", 3))
        assert arrays2 == {} and stub2 == BudgetCost("sum", 3)


# ---------------------------------------------------------------------------
# Budget move-set semantics
# ---------------------------------------------------------------------------

class TestBudgetMoves:
    def test_target_mask_blocks_full_vertices(self):
        g = star_graph(6)  # center 0 has degree 5
        model = BudgetCost("sum", 2)
        leaf = 1
        w = 0  # the leaf's only neighbour
        mask = model.target_mask(g, leaf, w)
        assert mask[0]  # neighbour of the mover: deletion slot stays legal
        assert mask[2] and mask[5]  # other leaves are below cap
        mask_center = model.target_mask(g, 0, 1)
        # From the center's perspective every leaf has degree 1 < cap.
        assert mask_center[np.arange(1, 6)].all()

    def test_legal_add_targets_composes_mask(self):
        g = path_graph(4)
        model = BudgetCost("sum", 2)
        mask = legal_add_targets(g, 0, 1, model)
        assert not mask[0]  # the mover itself is never a target
        assert not mask[2]  # interior vertex at its cap
        assert mask[1] and mask[3]

    def test_budget_blocks_the_base_game_violation(self):
        # P4 admits an improving sum swap (0: drop 1, add 2), but under a
        # cap of 2 the interior target is full — the path is a budget
        # equilibrium while not a base sum equilibrium.
        g = path_graph(4)
        assert find_sum_violation(g) is not None
        for mode in ("repair", "batched", "rebuild"):
            assert find_swap_violation(g, "budget-sum:cap=2", mode=mode) is None
        assert is_equilibrium(g, "budget-sum:cap=2")

    def test_best_swap_respects_budget(self):
        g = path_graph(4)
        br = best_swap(g, 0, "budget-sum:cap=2")
        assert br.swap is None
        unconstrained = best_swap(g, 0, "sum")
        assert unconstrained.swap is not None

    def test_first_improving_swap_respects_budget(self):
        from repro.core import first_improving_swap

        g = path_graph(4)
        for seed in range(5):
            br = first_improving_swap(g, 0, "budget-sum:cap=2", seed=seed)
            assert br.swap is None


# ---------------------------------------------------------------------------
# End-to-end reachability: dynamics + census for both variants
# ---------------------------------------------------------------------------

class TestVariantReachability:
    def test_interest_census_reaches_verified_equilibrium(self):
        records = run_census(
            [10], families=("tree", "sparse"), replicates=2,
            objective=INTEREST_SPEC, root_seed=2,
        )
        assert all(r.objective == INTEREST_SPEC for r in records)
        converged = [r for r in records if r.converged]
        assert converged, "interest dynamics never converged"
        assert all(r.verified_equilibrium is True for r in converged)
        # Independent re-audit of one endpoint through the public API.
        res = SwapDynamics(objective=INTEREST_SPEC, seed=4).run(
            random_tree(10, 6)
        )
        assert res.converged
        assert is_equilibrium(res.graph, INTEREST_SPEC, mode="batched")

    def test_budget_census_reaches_verified_equilibrium(self):
        records = run_census(
            [10], families=("tree", "sparse"), replicates=2,
            objective=BUDGET_SPEC, root_seed=3,
        )
        assert all(r.objective == BUDGET_SPEC for r in records)
        converged = [r for r in records if r.converged]
        assert converged, "budget dynamics never converged"
        assert all(r.verified_equilibrium is True for r in converged)
        # The cap binds: a vertex's degree never grows past max(start, cap)
        # (swaps keep the mover's degree; adds are blocked at the cap).
        initial = random_tree(12, 1)
        res = SwapDynamics(objective=BUDGET_SPEC, seed=1).run(initial)
        assert (
            np.diff(res.graph.indptr)
            <= np.maximum(np.diff(initial.indptr), 3)
        ).all()

    def test_budget_equilibrium_is_brute_force_stable(self):
        res = SwapDynamics(objective="budget-sum:cap=3", seed=9).run(
            random_tree(9, 12)
        )
        assert res.converged
        g = res.graph
        model = BudgetCost("sum", 3)
        deg = np.diff(g.indptr)
        for v in range(g.n):
            base = _brute_cost(g, v, model)
            for w in map(int, g.neighbors(v)):
                for w2 in range(g.n):
                    if w2 in (v, w):
                        continue
                    legal = deg[w2] < 3 or g.has_edge(v, w2)
                    if not legal:
                        continue
                    after = _brute_cost(
                        swapped_graph(g, Swap(v, w, w2)), v, model
                    )
                    assert after >= base, (v, w, w2)

    def test_interest_equilibrium_is_brute_force_stable(self):
        spec = "interest-sum:k=2,seed=3"
        res = SwapDynamics(objective=spec, seed=2).run(random_tree(8, 3))
        assert res.converged
        g = res.graph
        model = resolve_cost_model(spec, g.n)
        for v in range(g.n):
            base = _brute_cost(g, v, model)
            for w in map(int, g.neighbors(v)):
                for w2 in range(g.n):
                    if w2 in (v, w):
                        continue
                    after = _brute_cost(
                        swapped_graph(g, Swap(v, w, w2)), v, model
                    )
                    assert after >= base, (v, w, w2)

    def test_variant_census_streams_spec_in_jsonl(self, tmp_path):
        import json

        path = tmp_path / "variant.jsonl"
        run_census(
            [8], families=("tree",), replicates=1,
            objective="budget-max:cap=3", jsonl_path=path,
        )
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["objective"] == "budget-max:cap=3"
        assert json.loads(lines[1])["objective"] == "budget-max:cap=3"
