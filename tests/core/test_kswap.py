"""Exact k-swap stability tests — validating the monotonicity shortcut."""

import pytest

from repro.errors import ConfigurationError, DisconnectedGraphError
from repro.core import (
    is_k_insertion_stable,
    is_k_swap_stable,
    k_insertion_witness,
    k_swap_witness,
    lift_distances,
    resolve_cost_model,
)
from repro.constructions import rotated_torus
from repro.graphs import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    distance_matrix,
    path_graph,
    star_graph,
)


class TestKSwapWitness:
    def test_path_end_has_single_swap_witness(self):
        g = path_graph(6)
        w = k_swap_witness(g, 0, 1)
        assert w is not None
        drops, adds = w
        assert len(drops) <= 1 and len(adds) <= 1

    def test_star_leaves_stable(self):
        g = star_graph(6)
        for v in range(1, 6):
            assert k_swap_witness(g, v, 2) is None

    def test_witness_actually_lowers_ecc(self):
        from repro.core import local_diameter

        g = cycle_graph(10)
        w = k_swap_witness(g, 0, 2)
        assert w is not None
        drops, adds = w
        g2 = g.with_edges(
            remove=[(0, d) for d in drops], add=[(0, a) for a in adds]
        )
        assert local_diameter(g2, 0) < local_diameter(g, 0)

    def test_requires_connectivity(self):
        with pytest.raises(DisconnectedGraphError):
            k_swap_witness(CSRGraph(3, [(0, 1)]), 0, 1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_swap_witness(path_graph(4), 0, 0)


class TestMonotonicityImplication:
    """k-insertion stability must imply k-swap stability (the shortcut the
    fast auditor uses); verify both directions' behaviour on knowns."""

    def test_torus_k1_agreement(self):
        g = rotated_torus(3)
        assert is_k_insertion_stable(g, 1, vertices=[0])
        assert is_k_swap_stable(g, 1, vertices=[0])

    def test_torus_k2_agreement(self):
        # rotated_torus(4) is 2-insertion UNstable; the exact k-swap search
        # must also find a witness (a pure insertion is a legal multi-move).
        g = rotated_torus(4)
        assert k_insertion_witness(g, 0, 2) is not None
        assert k_swap_witness(g, 0, 2) is not None

    def test_insertion_witness_is_also_swap_witness(self):
        g = rotated_torus(4)
        ins = k_insertion_witness(g, 0, 2)
        assert ins is not None
        sw = k_swap_witness(g, 0, 2, candidate_adds=ins)
        assert sw is not None
        drops, adds = sw
        assert set(adds).issubset(set(ins))

    def test_no_swap_witness_on_insertion_stable_small(self):
        # Exhaustive agreement on a small vertex-transitive instance.
        g = rotated_torus(2)
        for k in (1, 2):
            assert is_k_insertion_stable(g, k, vertices=[0]) == (
                k_swap_witness(g, 0, k) is None
            )


def _cost(graph, v, spec):
    model = resolve_cost_model(spec, graph.n)
    return model.row_cost(v, lift_distances(distance_matrix(graph))[v])


def _apply(graph, v, witness):
    drops, adds = witness
    return graph.with_edges(
        remove=[(v, d) for d in drops], add=[(v, a) for a in adds]
    )


class TestCostModelArgument:
    """ISSUE 4: the audit takes a model instead of silently assuming max."""

    def test_default_is_still_max(self):
        g = cycle_graph(10)
        assert k_swap_witness(g, 0, 2) == k_swap_witness(
            g, 0, 2, objective="max"
        )

    @pytest.mark.parametrize(
        "spec", ["sum", "max", "interest-sum:k=3,seed=1"]
    )
    def test_witness_actually_lowers_model_cost(self, spec):
        g = cycle_graph(10)
        w = k_swap_witness(g, 0, 2, objective=spec)
        if w is None:  # interest sets can happen to be satisfied already
            return
        assert _cost(_apply(g, 0, w), 0, spec) < _cost(g, 0, spec)

    def test_star_leaf_has_sum_insertion_witness(self):
        # Under max, star leaves are stable; under sum, a pure insertion
        # to another leaf strictly improves — the old hardcoded-max audit
        # answered the wrong question for sum callers.
        g = star_graph(6)
        assert k_swap_witness(g, 1, 2, objective="max") is None
        w = k_swap_witness(g, 1, 2, objective="sum")
        assert w is not None
        drops, adds = w
        assert drops == () and len(adds) >= 1  # a pure insertion
        assert _cost(_apply(g, 1, w), 1, "sum") < _cost(g, 1, "sum")

    def test_complete_graph_stable_under_both(self):
        g = complete_graph(5)
        for spec in ("sum", "max"):
            assert is_k_swap_stable(g, 2, objective=spec)

    @pytest.mark.parametrize("spec", ["budget-sum:cap=3", "budget-max:cap=3"])
    def test_move_set_constrained_models_rejected(self, spec):
        g = cycle_graph(8)
        with pytest.raises(ConfigurationError, match="move set"):
            k_swap_witness(g, 0, 1, objective=spec)
        with pytest.raises(ConfigurationError, match="move set"):
            is_k_swap_stable(g, 1, objective=spec)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            k_swap_witness(cycle_graph(6), 0, 1, objective="median")

    def test_sum_and_max_witnesses_can_differ(self):
        # A path end: under both objectives a witness exists, and each
        # one's improvement is in its own objective.
        g = path_graph(7)
        for spec in ("sum", "max"):
            w = k_swap_witness(g, 0, 1, objective=spec)
            assert w is not None
            assert _cost(_apply(g, 0, w), 0, spec) < _cost(g, 0, spec)


class _FakeClock:
    """Deterministic monotonic() stand-in: advances one tick per call."""

    def __init__(self, start=0.0, step=1.0):
        self.now = start
        self.step = step

    def monotonic(self):
        value = self.now
        self.now += self.step
        return value


class TestDeadline:
    def test_spent_deadline_raises_immediately(self):
        import time

        from repro.errors import DeadlineExceeded

        with pytest.raises(DeadlineExceeded):
            k_swap_witness(cycle_graph(10), 0, 2, deadline=time.monotonic() - 1.0)

    def test_fake_clock_interrupts_mid_enumeration(self, monkeypatch):
        # check_deadline reads the clock through repro.parallel.pool's
        # module-level ``time``; swap it for a stepping fake so the budget
        # expires after a known number of drop-set checks — no sleeps, no
        # wall-clock flakiness.
        from repro.errors import DeadlineExceeded
        from repro.parallel import pool as pool_mod

        clock = _FakeClock(start=0.0, step=1.0)
        monkeypatch.setattr(pool_mod, "time", clock)
        # A star leaf is k-swap stable, so the enumeration never returns
        # early: with k=2 it visits drop-sets {} and {hub}, checking the
        # deadline once per drop-set.  A budget of 0.5 ticks survives the
        # first check (t=0) and expires on the second (t=1).
        with pytest.raises(DeadlineExceeded):
            k_swap_witness(star_graph(6), 1, 2, deadline=0.5)
        assert clock.now >= 2.0  # the clock was actually consulted

    def test_is_k_swap_stable_forwards_deadline(self, monkeypatch):
        from repro.errors import DeadlineExceeded
        from repro.parallel import pool as pool_mod

        clock = _FakeClock()
        monkeypatch.setattr(pool_mod, "time", clock)
        # A star is 1-swap stable, so the all() over vertices cannot
        # short-circuit: the hub exits early (adjacent to everyone) and
        # each of the 5 leaves burns two drop-set checks.  The budget
        # expires partway through the leaves.
        with pytest.raises(DeadlineExceeded):
            is_k_swap_stable(star_graph(6), 1, deadline=4.5)

    def test_no_deadline_never_consults_the_clock(self, monkeypatch):
        from repro.parallel import pool as pool_mod

        clock = _FakeClock()
        monkeypatch.setattr(pool_mod, "time", clock)
        assert k_swap_witness(star_graph(6), 1, 1) is None
        assert clock.now == 0.0


class TestCandidatePoolHoist:
    """The hoisted frozenset neighbor filter must be behaviour-preserving:
    the default pool and an explicit (duplicate-laden, unsorted) candidate
    pool covering all vertices yield identical witnesses."""

    @pytest.mark.parametrize(
        "graph", [path_graph(6), cycle_graph(8), star_graph(5)]
    )
    def test_default_pool_matches_explicit_full_pool(self, graph):
        n = graph.n
        for v in range(n):
            default = k_swap_witness(graph, v, 1)
            explicit = k_swap_witness(graph, v, 1, candidate_adds=range(n))
            assert default == explicit, (v, default, explicit)

    @pytest.mark.parametrize(
        "graph", [path_graph(6), cycle_graph(8), star_graph(5)]
    )
    def test_noisy_pool_finds_a_witness_iff_default_does(self, graph):
        # Duplicates and reversed order change which witness is found
        # first, never whether one exists or whether it improves.
        n = graph.n
        noisy = list(range(n - 1, -1, -1)) + list(range(n))
        for v in range(n):
            default = k_swap_witness(graph, v, 1)
            w = k_swap_witness(graph, v, 1, candidate_adds=noisy)
            assert (w is None) == (default is None), (v, default, w)
            if w is not None:
                assert _cost(_apply(graph, v, w), v, "max") < _cost(
                    graph, v, "max"
                )

    def test_neighbors_and_self_filtered_from_explicit_pool(self):
        g = path_graph(6)
        # Handing the filter only v itself and v's neighbours must leave
        # an empty pool: the sole legal move is then a pure deletion.
        w = k_swap_witness(g, 0, 1, candidate_adds=[0, 1, 1, 0])
        assert w is None or w[1] == ()
