"""Equilibrium auditor tests — the paper's definitions, checked on knowns."""

import math

import pytest
from hypothesis import given, settings

from repro.errors import DisconnectedGraphError
from repro.core import (
    find_deletion_criticality_violation,
    find_insertion_violation,
    find_max_swap_violation,
    find_sum_violation,
    is_deletion_critical,
    is_insertion_stable,
    is_k_insertion_stable,
    is_max_equilibrium,
    is_sum_equilibrium,
    k_insertion_witness,
    sum_equilibrium_gap,
    swapped_graph,
)
from repro.constructions import (
    diagonal_torus,
    double_star,
    rotated_torus,
    standard_torus,
)
from repro.graphs import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)

from ..conftest import connected_graphs


class TestBaseDmPassThrough:
    """Audits accept a precomputed base_dm (raw or lifted) and agree exactly."""

    @pytest.mark.parametrize("mode", ["repair", "batched"])
    def test_violation_identical_with_base_dm(self, mode):
        from repro.core import find_swap_violation, lift_distances
        from repro.graphs import distance_matrix, random_connected_gnm

        g = random_connected_gnm(12, 20, seed=4)
        raw = distance_matrix(g)
        plain = find_swap_violation(g, "sum", mode=mode)
        assert plain is not None  # dense random graphs are not at rest
        for dm in (raw, lift_distances(raw)):
            assert find_swap_violation(g, "sum", mode=mode, base_dm=dm) == plain

    def test_is_equilibrium_with_base_dm_and_criticality(self):
        from repro.core import is_equilibrium, lift_distances
        from repro.graphs import distance_matrix

        g = cycle_graph(5)
        dm = lift_distances(distance_matrix(g))
        assert is_equilibrium(g, "max", base_dm=dm) == is_equilibrium(g, "max")
        assert is_equilibrium(g, "sum", base_dm=dm) == is_equilibrium(g, "sum")

    def test_disconnected_base_dm_raises(self):
        from repro.core import find_swap_violation, lift_distances
        from repro.graphs import distance_matrix

        g = CSRGraph(4, [(0, 1), (2, 3)])
        dm = lift_distances(distance_matrix(g))
        with pytest.raises(DisconnectedGraphError):
            find_swap_violation(g, "sum", base_dm=dm)


class TestSumEquilibrium:
    def test_star_is_equilibrium(self):
        assert is_sum_equilibrium(star_graph(8))

    def test_complete_is_equilibrium(self):
        assert is_sum_equilibrium(complete_graph(6))

    def test_path_is_not(self):
        v = find_sum_violation(path_graph(6))
        assert v is not None
        assert v.improvement > 0
        assert v.kind == "sum-swap"

    def test_violation_is_real(self):
        # Applying the reported violation must actually improve the mover.
        from repro.core import sum_cost

        g = cycle_graph(9)
        v = find_sum_violation(g)
        assert v is not None
        g2 = swapped_graph(g, v.as_swap())
        assert sum_cost(g2, v.vertex) == v.after < v.before

    def test_tiny_graphs_trivially_stable(self):
        assert is_sum_equilibrium(CSRGraph(1, []))
        assert is_sum_equilibrium(CSRGraph(2, [(0, 1)]))

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            is_sum_equilibrium(CSRGraph(3, [(0, 1)]))

    def test_gap_zero_at_equilibrium(self):
        assert sum_equilibrium_gap(star_graph(7)) == 0.0

    def test_gap_positive_off_equilibrium(self):
        gap = sum_equilibrium_gap(path_graph(7))
        assert gap > 0

    def test_gap_matches_best_violation(self):
        from repro.core import best_swap

        g = path_graph(6)
        gap = sum_equilibrium_gap(g)
        best = max(
            best_swap(g, v, "sum").improvement for v in range(g.n)
        )
        assert gap == best

    @given(connected_graphs(min_n=3, max_n=10))
    @settings(max_examples=30, deadline=None)
    def test_diameter_2_graphs_are_sum_equilibria(self, g):
        # Lemma 6 consequence: diameter <= 2 implies sum equilibrium.
        from repro.graphs import diameter

        if diameter(g) <= 2:
            assert is_sum_equilibrium(g)


class TestMaxEquilibrium:
    def test_torus_is_max_equilibrium(self):
        assert is_max_equilibrium(rotated_torus(3))

    def test_standard_torus_is_not(self):
        assert not is_max_equilibrium(standard_torus(6, 6))

    def test_double_star_is_max_equilibrium(self):
        assert is_max_equilibrium(double_star(2, 2))
        assert is_max_equilibrium(double_star(3, 5))

    def test_single_leaf_double_star_is_not(self):
        assert not is_max_equilibrium(double_star(1, 2))

    def test_star_is_max_equilibrium(self):
        assert is_max_equilibrium(star_graph(6))

    def test_path_fails_swap_condition(self):
        assert find_max_swap_violation(path_graph(6)) is not None

    def test_violation_improves_ecc(self):
        from repro.core import local_diameter

        g = path_graph(7)
        v = find_max_swap_violation(g)
        assert v is not None
        g2 = swapped_graph(g, v.as_swap())
        assert local_diameter(g2, v.vertex) == v.after < v.before


class TestDeletionCriticality:
    def test_cycle_with_chord_not_critical(self):
        # The chord's deletion leaves eccs unchanged or the chord is
        # extraneous for one endpoint.
        g = cycle_graph(6).with_edges(add=[(0, 2)])
        assert not is_deletion_critical(g)

    def test_tree_is_deletion_critical(self):
        # Removing any tree edge disconnects -> ecc becomes inf (> any).
        assert is_deletion_critical(path_graph(5))
        assert is_deletion_critical(star_graph(6))

    def test_torus_is_deletion_critical(self):
        assert is_deletion_critical(rotated_torus(4))

    def test_violation_reports_edge(self):
        g = cycle_graph(6).with_edges(add=[(0, 2)])
        v = find_deletion_criticality_violation(g)
        assert v is not None
        assert v.kind == "deletion"
        assert v.after <= v.before

    def test_complete_graph_is_deletion_critical(self):
        # Removing any K_n edge lifts both endpoints' ecc from 1 to 2.
        assert is_deletion_critical(complete_graph(4))


class TestInsertionStability:
    def test_torus_is_insertion_stable(self):
        assert is_insertion_stable(rotated_torus(4))

    def test_path_is_not(self):
        v = find_insertion_violation(path_graph(5))
        assert v is not None
        assert v.kind == "insertion"

    def test_complete_graph_vacuously_stable(self):
        assert is_insertion_stable(complete_graph(5))

    def test_insertion_violation_is_real(self):
        g = path_graph(6)
        v = find_insertion_violation(g)
        added = g.with_edges(add=[(v.vertex, v.add)])
        from repro.core import local_diameter

        assert local_diameter(added, v.vertex) == v.after < v.before


class TestKInsertionStability:
    def test_torus_2d_is_1_stable_unstable_at_2(self):
        g = rotated_torus(4)
        assert is_k_insertion_stable(g, 1, vertices=[0])
        assert not is_k_insertion_stable(g, 2, vertices=[0])

    def test_torus_3d_meets_papers_d_minus_1_guarantee(self):
        # The paper claims stability under d-1 = 2 insertions; at small side
        # lengths the construction is in fact even more stable (no claim is
        # violated — the guarantee is a lower bound on stability).
        g = diagonal_torus(3, 3)
        assert is_k_insertion_stable(g, 2, vertices=[0])

    def test_torus_4d_meets_papers_d_minus_1_guarantee(self):
        g = diagonal_torus(2, 4)
        assert is_k_insertion_stable(g, 3, vertices=[0])

    def test_witness_actually_improves(self):
        from repro.core import local_diameter

        g = rotated_torus(4)
        witness = k_insertion_witness(g, 0, 2)
        assert witness is not None and len(witness) <= 2
        added = g.with_edges(add=[(0, a) for a in witness])
        assert local_diameter(added, 0) < local_diameter(g, 0)

    def test_low_eccentricity_always_stable(self):
        assert k_insertion_witness(star_graph(6), 0, 3) is None

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            k_insertion_witness(rotated_torus(3), 0, 0)
