"""Census runner tests."""

import math

import pytest

from repro.core import run_census
from repro.core.census import census_to_rows, seed_graph
from repro.graphs import is_connected


class TestSeedGraphs:
    def test_families(self):
        t = seed_graph("tree", 20, 1)
        s = seed_graph("sparse", 20, 1)
        d = seed_graph("dense", 20, 1)
        assert t.m == 19
        assert s.m > t.m
        assert d.m >= s.m
        for g in (t, s, d):
            assert is_connected(g)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            seed_graph("clique", 10, 0)

    def test_deterministic(self):
        assert seed_graph("sparse", 16, 5) == seed_graph("sparse", 16, 5)


class TestCensus:
    def test_records_shape_and_verification(self):
        records = run_census(
            [8, 12], families=("tree",), replicates=2, root_seed=1
        )
        assert len(records) == 4
        for r in records:
            assert r.objective == "sum"
            assert r.m_initial == r.n - 1
            if r.converged:
                assert r.verified_equilibrium is True
                assert math.isfinite(r.diameter_final)
                # Trees under sum dynamics end as stars (Theorem 1).
                assert r.is_star
                assert r.diameter_final <= 2

    def test_deterministic_across_runs(self):
        a = run_census([10], families=("sparse",), replicates=2, root_seed=3)
        b = run_census([10], families=("sparse",), replicates=2, root_seed=3)
        assert [r.diameter_final for r in a] == [r.diameter_final for r in b]
        assert [r.steps for r in a] == [r.steps for r in b]

    def test_rows_conversion(self):
        records = run_census([8], families=("tree",), replicates=1, root_seed=0)
        rows = census_to_rows(records)
        assert isinstance(rows[0], dict)
        assert rows[0]["n"] == 8

    def test_max_objective_census(self):
        records = run_census(
            [8], families=("sparse",), replicates=1,
            objective="max", root_seed=2,
        )
        (r,) = records
        if r.converged:
            assert r.verified_equilibrium is True
