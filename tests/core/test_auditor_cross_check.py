"""Independent brute-force cross-check of the equilibrium auditors.

The vectorized auditor is the single most load-bearing piece of the
reproduction (the Figure 3 finding rests on it), so this module re-implements
the paper's definitions from scratch — plain networkx, no repro distance
code — and compares verdicts on random graphs.  Any divergence between the
two implementations fails loudly with the offending graph.
"""

import math

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core import (
    find_max_swap_violation,
    find_sum_violation,
    is_deletion_critical,
    is_insertion_stable,
)
from repro.graphs import to_networkx

from ..conftest import connected_graphs


def _nx_sum_cost(G, v) -> float:
    lengths = nx.single_source_shortest_path_length(G, v)
    if len(lengths) < G.number_of_nodes():
        return math.inf
    return float(sum(lengths.values()))


def _nx_ecc(G, v) -> float:
    lengths = nx.single_source_shortest_path_length(G, v)
    if len(lengths) < G.number_of_nodes():
        return math.inf
    return float(max(lengths.values()))


def _nx_swapped(G, v, w, w2):
    H = G.copy()
    H.remove_edge(v, w)
    if w2 != w and not H.has_edge(v, w2):
        H.add_edge(v, w2)
    return H


def _nx_has_sum_violation(G) -> bool:
    for v in G:
        base = _nx_sum_cost(G, v)
        for w in list(G.neighbors(v)):
            for w2 in G:
                if w2 in (v, w):
                    continue
                if _nx_sum_cost(_nx_swapped(G, v, w, w2), v) < base:
                    return True
    return False


def _nx_has_max_swap_violation(G) -> bool:
    for v in G:
        base = _nx_ecc(G, v)
        for w in list(G.neighbors(v)):
            for w2 in G:
                if w2 in (v, w):
                    continue
                if _nx_ecc(_nx_swapped(G, v, w, w2), v) < base:
                    return True
    return False


def _nx_is_deletion_critical(G) -> bool:
    for u, v in list(G.edges()):
        H = G.copy()
        H.remove_edge(u, v)
        for x in (u, v):
            if not _nx_ecc(H, x) > _nx_ecc(G, x):
                return False
    return True


def _nx_is_insertion_stable(G) -> bool:
    nodes = list(G)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if G.has_edge(u, v):
                continue
            H = G.copy()
            H.add_edge(u, v)
            if _nx_ecc(H, u) < _nx_ecc(G, u) or _nx_ecc(H, v) < _nx_ecc(G, v):
                return False
    return True


class TestCrossCheck:
    @given(connected_graphs(min_n=3, max_n=9))
    @settings(max_examples=40, deadline=None)
    def test_sum_verdicts_agree(self, g):
        G = to_networkx(g)
        ours = find_sum_violation(g) is not None
        theirs = _nx_has_sum_violation(G)
        assert ours == theirs

    @given(connected_graphs(min_n=3, max_n=8))
    @settings(max_examples=25, deadline=None)
    def test_max_swap_verdicts_agree(self, g):
        G = to_networkx(g)
        ours = find_max_swap_violation(g) is not None
        theirs = _nx_has_max_swap_violation(G)
        assert ours == theirs

    @given(connected_graphs(min_n=3, max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_deletion_criticality_agrees(self, g):
        assert is_deletion_critical(g) == _nx_is_deletion_critical(
            to_networkx(g)
        )

    @given(connected_graphs(min_n=3, max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_insertion_stability_agrees(self, g):
        assert is_insertion_stable(g) == _nx_is_insertion_stable(
            to_networkx(g)
        )

    def test_figure3_verdict_by_independent_auditor(self):
        # The headline finding, one more time, through code that shares
        # nothing with the library's distance kernels.
        from repro.constructions import figure3_graph, repaired_diameter3_witness

        assert _nx_has_sum_violation(to_networkx(figure3_graph()))
        assert not _nx_has_sum_violation(
            to_networkx(repaired_diameter3_witness())
        )
