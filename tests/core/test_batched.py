"""Batched audit kernel + fleet cross-validation.

The ISSUE-2 exactness contract: ``mode="batched"`` must agree *exactly* —
violations, tie-breaking, gaps, record order — with ``mode="repair"`` and
the seed ``mode="rebuild"`` oracle on the deterministic battery (trees,
sparse and dense G(n, m), bridges, disconnecting removals, n ≤ 3), and
every parallel surface (audits, sweeps, census fleet, exhaustive census)
must be bit-identical across worker counts.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    best_swap,
    find_deletion_criticality_violation,
    find_max_swap_violation,
    find_sum_violation,
    is_sum_equilibrium,
    run_census,
    sum_equilibrium_gap,
)
from repro.core.batched import BatchedRemovalPlan
from repro.core.costs import lift_distances
from repro.core.exhaustive import exhaustive_equilibrium_census
from repro.core.swap_eval import removal_distance_matrix
from repro.graphs import (
    cycle_graph,
    distance_matrix,
    path_graph,
    random_connected_gnm,
    random_tree,
    star_graph,
)
from repro.parallel import Sweep, run_sweep

from ..conftest import graph_battery

BATTERY = graph_battery()


def _sweep_point(pt) -> dict:
    return {"value": pt["x"] * 10 + pt.seed % 7}


class TestBatchedModeOracle:
    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 2))
    def test_sum_violation_batched_equals_repair(self, idx):
        g = BATTERY[idx]
        assert find_sum_violation(g, mode="batched") == find_sum_violation(
            g, mode="repair"
        ), g.edges().tolist()

    @pytest.mark.parametrize("idx", range(1, len(BATTERY), 6))
    def test_sum_violation_batched_equals_rebuild_oracle(self, idx):
        g = BATTERY[idx]
        assert find_sum_violation(g, mode="batched") == find_sum_violation(
            g, mode="rebuild"
        ), g.edges().tolist()

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 5))
    def test_max_violation_batched_equals_repair(self, idx):
        g = BATTERY[idx]
        assert find_max_swap_violation(
            g, mode="batched"
        ) == find_max_swap_violation(g, mode="repair"), g.edges().tolist()

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 7))
    def test_gap_and_criticality_batched_agree(self, idx):
        g = BATTERY[idx]
        assert sum_equilibrium_gap(g, mode="batched") == sum_equilibrium_gap(
            g, mode="repair"
        )
        assert find_deletion_criticality_violation(
            g, mode="batched"
        ) == find_deletion_criticality_violation(g, mode="repair")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            find_sum_violation(path_graph(5), mode="telepathy")
        with pytest.raises(ValueError):
            sum_equilibrium_gap(path_graph(5), mode="telepathy")


class TestBatchedRemovalPlan:
    def test_bridge_detection_on_tree(self):
        g = random_tree(12, seed=3)
        lifted = lift_distances(distance_matrix(g))
        plan = BatchedRemovalPlan(g, lifted, list(g.iter_edges()))
        assert all(plan.is_bridge(i) for i in range(len(plan.edges)))

    def test_cycle_has_no_bridges(self):
        g = cycle_graph(9)
        lifted = lift_distances(distance_matrix(g))
        plan = BatchedRemovalPlan(g, lifted, list(g.iter_edges()))
        assert not any(plan.is_bridge(i) for i in range(len(plan.edges)))

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 9))
    def test_endpoint_rows_and_matrices_exact(self, idx):
        g = BATTERY[idx]
        if g.n < 2:
            return
        lifted = lift_distances(distance_matrix(g))
        edges = list(g.iter_edges())
        plan = BatchedRemovalPlan(g, lifted, edges)
        for i, (a, b) in enumerate(edges):
            oracle = removal_distance_matrix(g, (a, b), mode="rebuild")
            assert np.array_equal(plan.endpoint_row(i, a), oracle[a])
            assert np.array_equal(plan.endpoint_row(i, b), oracle[b])
            assert np.array_equal(plan.removal_matrix(i), oracle)

    def test_bound_never_exceeds_exact(self):
        g = random_connected_gnm(12, 20, seed=5)
        lifted = lift_distances(distance_matrix(g))
        edges = list(g.iter_edges())
        plan = BatchedRemovalPlan(g, lifted, edges)
        base_plus1 = lifted + 1
        buf = np.empty((g.n, g.n), dtype=np.int64)
        for i, (a, b) in enumerate(edges):
            for v, w in ((a, b), (b, a)):
                bound = plan.bound_costs(i, v, w, "sum", base_plus1, buf)
                exact = plan.exact_costs(i, v, w, "sum")
                assert (bound <= exact).all()


class TestWorkerInvariance:
    """workers=1 vs workers=4 must be bit-identical on every surface."""

    @pytest.mark.parametrize("mode", ["repair", "batched"])
    def test_violation_across_worker_counts(self, mode):
        g = random_connected_gnm(14, 24, seed=8)
        serial = find_sum_violation(g, workers=1, mode=mode)
        assert serial is not None  # dense random graphs are not at rest
        assert find_sum_violation(g, workers=4, mode=mode) == serial

    @pytest.mark.parametrize("mode", ["repair", "batched"])
    def test_equilibrium_verdict_across_worker_counts(self, mode):
        g = star_graph(11)
        assert is_sum_equilibrium(g, workers=1, mode=mode)
        assert is_sum_equilibrium(g, workers=4, mode=mode)

    @pytest.mark.parametrize("mode", ["repair", "batched"])
    def test_gap_across_worker_counts(self, mode):
        g = random_connected_gnm(12, 18, seed=5)
        assert sum_equilibrium_gap(g, workers=4, mode=mode) == (
            sum_equilibrium_gap(g, workers=1, mode=mode)
        )

    @pytest.mark.parametrize("mode", ["repair", "batched"])
    def test_deletion_criticality_across_worker_counts(self, mode):
        g = random_connected_gnm(10, 16, seed=9)
        assert find_deletion_criticality_violation(
            g, workers=4, mode=mode
        ) == find_deletion_criticality_violation(g, workers=1, mode=mode)

    def test_sweep_across_worker_counts(self):
        sweep = Sweep(grid={"x": [1, 2, 3]}, replicates=2, root_seed=4)
        assert run_sweep(_sweep_point, sweep, workers=1) == run_sweep(
            _sweep_point, sweep, workers=4
        )


class TestCensusFleet:
    def test_fleet_matches_serial_and_streams_jsonl(self, tmp_path):
        kwargs = dict(
            n_values=[8, 10],
            families=("tree", "sparse"),
            replicates=2,
            root_seed=13,
        )
        serial = run_census(
            jsonl_path=tmp_path / "serial.jsonl", **kwargs
        )
        fleet = run_census(
            workers=4, jsonl_path=tmp_path / "fleet.jsonl", **kwargs
        )
        assert fleet == serial  # records and record order, bit-identical
        serial_text = (tmp_path / "serial.jsonl").read_text()
        assert serial_text == (tmp_path / "fleet.jsonl").read_text()
        lines = serial_text.splitlines()
        # One run-config header line plus one line per record.
        assert len(lines) == len(serial) + 1 == 9
        header = json.loads(lines[0])
        assert header["objective"] == "sum" and header["root_seed"] == 13
        first = json.loads(lines[1])
        assert first["n"] == 8 and first["family"] == "tree"

    def test_conflicting_sharding_axes_rejected(self):
        with pytest.raises(ValueError):
            run_census([6], workers=2, verify_workers=2)

    def test_resume_continues_interrupted_stream(self, tmp_path):
        kwargs = dict(
            n_values=[8], families=("tree", "sparse"), replicates=2,
            root_seed=3,
        )
        path = tmp_path / "census.jsonl"
        full = run_census(jsonl_path=path, **kwargs)
        text = path.read_text()
        lines = text.splitlines()
        # Simulate a crash: keep 2 complete records plus a torn third line.
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][:13])
        resumed = run_census(jsonl_path=path, resume=True, **kwargs)
        assert resumed == full
        assert path.read_text() == text

    def test_resume_rejects_mismatched_grid(self, tmp_path):
        path = tmp_path / "census.jsonl"
        run_census([6], families=("tree",), replicates=1, jsonl_path=path)
        with pytest.raises(ValueError):
            run_census(
                [6], families=("tree",), replicates=1, root_seed=99,
                jsonl_path=path, resume=True,
            )

    def test_resume_requires_jsonl_path(self):
        with pytest.raises(ValueError):
            run_census([6], resume=True)

    def test_exhaustive_census_sharding_matches_serial(self):
        serial = exhaustive_equilibrium_census(5, "sum")
        sharded = exhaustive_equilibrium_census(5, "sum", workers=4)
        assert sharded.n == serial.n
        assert sharded.connected_graphs == serial.connected_graphs
        assert sharded.audited == serial.audited
        assert set(sharded.by_diameter) == set(serial.by_diameter)
        for d, cell in serial.by_diameter.items():
            other = sharded.by_diameter[d]
            assert (other.graphs, other.equilibria, other.example) == (
                cell.graphs, cell.equilibria, cell.example
            )

    def test_exhaustive_census_workers_with_mask_range_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            exhaustive_equilibrium_census(
                4, "sum", mask_range=(0, 8), workers=2
            )


class TestBestSwapBaseDm:
    @pytest.mark.parametrize("objective", ["sum", "max"])
    def test_precomputed_base_dm_matches(self, objective):
        g = random_connected_gnm(11, 18, seed=2)
        dm = distance_matrix(g)
        for v in range(0, g.n, 2):
            plain = best_swap(g, v, objective)
            primed = best_swap(g, v, objective, base_dm=dm)
            lifted = best_swap(g, v, objective, base_dm=lift_distances(dm))
            for other in (primed, lifted):
                assert plain.swap == other.swap
                assert plain.before == other.before
                assert plain.after == other.after
                assert plain.is_deletion == other.is_deletion
