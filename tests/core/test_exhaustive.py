"""Exhaustive census tests."""

import pytest

from repro.errors import ConfigurationError
from repro.core.exhaustive import (
    CensusCell,
    exhaustive_equilibrium_census,
    merge_censuses,
    smallest_diameter3_sum_equilibria,
)
from repro.graphs import CSRGraph
from repro.core import find_sum_violation


class TestCensusCounts:
    def test_n4_connected_count(self):
        # Known: 38 connected labelled graphs on 4 vertices.
        census = exhaustive_equilibrium_census(4, "sum")
        assert census.connected_graphs == 38

    def test_n5_connected_count(self):
        # Known: 728 connected labelled graphs on 5 vertices.
        census = exhaustive_equilibrium_census(5, "sum")
        assert census.connected_graphs == 728

    def test_no_diameter3_sum_equilibria_small(self):
        # The census result the Figure 3 finding leans on: the smallest
        # possible Theorem 5 witness has n >= 7 — verified exhaustively.
        for n in (4, 5):
            census = exhaustive_equilibrium_census(n, "sum")
            for d, cell in census.by_diameter.items():
                if d >= 3:
                    assert cell.equilibria == 0

    def test_all_diameter_le2_are_equilibria(self):
        # The Lemma-6 shortcut the sum census uses, spot-audited: every
        # diameter-<=2 cell counts all of its graphs as equilibria, and a
        # sample of them passes the real auditor.
        census = exhaustive_equilibrium_census(4, "sum")
        for d in (1, 2):
            cell = census.by_diameter[d]
            assert cell.graphs == cell.equilibria
            assert cell.example is not None
            g = CSRGraph(4, cell.example)
            assert find_sum_violation(g) is None

    def test_max_census_has_fewer_equilibria(self):
        sum_census = exhaustive_equilibrium_census(4, "sum")
        max_census = exhaustive_equilibrium_census(4, "max")
        total_sum = sum(c.equilibria for c in sum_census.by_diameter.values())
        total_max = sum(c.equilibria for c in max_census.by_diameter.values())
        assert total_max < total_sum  # deletion-criticality prunes hard

    def test_helper_wrapper(self):
        counts = smallest_diameter3_sum_equilibria(5)
        assert counts == {4: 0, 5: 0}


class TestSharding:
    def test_shards_merge_to_full_census(self):
        full = exhaustive_equilibrium_census(4, "sum")
        total = 1 << 6
        parts = [
            exhaustive_equilibrium_census(4, "sum", mask_range=(0, total // 3)),
            exhaustive_equilibrium_census(
                4, "sum", mask_range=(total // 3, 2 * total // 3)
            ),
            exhaustive_equilibrium_census(
                4, "sum", mask_range=(2 * total // 3, total)
            ),
        ]
        merged = merge_censuses(parts)
        assert merged.connected_graphs == full.connected_graphs
        assert merged.audited == full.audited
        for d, cell in full.by_diameter.items():
            assert merged.by_diameter[d].graphs == cell.graphs
            assert merged.by_diameter[d].equilibria == cell.equilibria

    def test_merge_validation(self):
        with pytest.raises(ConfigurationError):
            merge_censuses([])
        a = exhaustive_equilibrium_census(4, "sum", mask_range=(0, 8))
        b = exhaustive_equilibrium_census(5, "sum", mask_range=(0, 8))
        with pytest.raises(ConfigurationError):
            merge_censuses([a, b])


class TestValidation:
    def test_size_guard(self):
        with pytest.raises(ConfigurationError):
            exhaustive_equilibrium_census(8, "sum")

    def test_objective_guard(self):
        with pytest.raises(ConfigurationError):
            exhaustive_equilibrium_census(4, "median")

    def test_bad_mask_range(self):
        with pytest.raises(ConfigurationError):
            exhaustive_equilibrium_census(4, "sum", mask_range=(0, 1 << 10))
