"""Swap move vocabulary tests."""

import pytest

from repro.errors import IllegalSwapError
from repro.core import Swap, apply_swap, swapped_graph
from repro.graphs import AdjacencyGraph, CSRGraph, path_graph


class TestValidation:
    def test_valid_swap(self):
        Swap(0, 1, 3).validate(path_graph(4))

    def test_identity_rejected(self):
        with pytest.raises(IllegalSwapError):
            Swap(0, 1, 1).validate(path_graph(4))

    def test_self_loop_rejected(self):
        with pytest.raises(IllegalSwapError):
            Swap(0, 1, 0).validate(path_graph(4))
        with pytest.raises(IllegalSwapError):
            Swap(1, 1, 2).validate(path_graph(4))

    def test_missing_edge_rejected(self):
        with pytest.raises(IllegalSwapError):
            Swap(0, 2, 3).validate(path_graph(4))

    def test_out_of_range_rejected(self):
        with pytest.raises(IllegalSwapError):
            Swap(0, 1, 9).validate(path_graph(4))


class TestApplication:
    def test_swapped_graph_relocation(self):
        g = path_graph(4)
        g2 = swapped_graph(g, Swap(0, 1, 3))
        assert g2.has_edge(0, 3)
        assert not g2.has_edge(0, 1)
        assert g2.m == g.m

    def test_swapped_graph_deletion(self):
        g = CSRGraph(4, [(0, 1), (0, 2), (2, 3)])
        g2 = swapped_graph(g, Swap(0, 1, 2))  # 2 already a neighbour
        assert g2.m == 2
        assert not g2.has_edge(0, 1)

    def test_apply_swap_mutates(self):
        adj = AdjacencyGraph(4, [(0, 1), (1, 2), (2, 3)])
        apply_swap(adj, Swap(1, 0, 3))
        assert adj.has_edge(1, 3)
        assert not adj.has_edge(0, 1)

    def test_apply_swap_validates(self):
        adj = AdjacencyGraph(3, [(0, 1)])
        with pytest.raises(IllegalSwapError):
            apply_swap(adj, Swap(0, 2, 1))

    def test_as_swap_dataclass_semantics(self):
        assert Swap(1, 2, 3) == Swap(1, 2, 3)
        assert Swap(1, 2, 3) != Swap(1, 3, 2)
