"""Checkpoint/resume bit-identity for the dynamics engine (DESIGN.md §13).

The contract under test: a run killed at an arbitrary checkpoint boundary
and resumed from its snapshot produces a :class:`DynamicsResult` equal to
the uninterrupted run — same moves, traces, counters, terminal graph —
for every ``engine_mode`` and cost-model family.  The kill is simulated
deterministically: a :class:`CheckpointStore` subclass raises right
*after* the Nth snapshot publishes, exactly the state a SIGKILL between
two moves leaves on disk.
"""

import pytest

from repro.core import SwapDynamics
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    StoreIntegrityError,
)
from repro.graphs import random_connected_gnm, random_tree
from repro.io.checkpoint import CheckpointStore


class _SimulatedKill(BaseException):
    """Out-of-band 'the process died here' — not an Exception subclass,
    so no library recovery path may swallow it."""


class _KillAfter(CheckpointStore):
    """A store whose owner dies immediately after the Nth publish."""

    def __init__(self, path, kills_after: int):
        super().__init__(path)
        self.saves = 0
        self.kills_after = kills_after

    def save(self, payload, config, meta=None):
        out = super().save(payload, config, meta)
        self.saves += 1
        if self.saves >= self.kills_after:
            raise _SimulatedKill()
        return out


OBJECTIVES = ["sum", "max", "interest-sum:k=3,seed=0", "budget-sum:cap=3"]
ENGINE_MODES = ["incremental", "batched", "oracle"]


def _dyn(objective, engine_mode) -> SwapDynamics:
    return SwapDynamics(
        objective=objective,
        engine_mode=engine_mode,
        record=True,
        max_steps=400,
        seed=7,
    )


@pytest.mark.parametrize("engine_mode", ENGINE_MODES)
@pytest.mark.parametrize("objective", OBJECTIVES)
class TestResumeBitIdentity:
    def test_kill_mid_run_then_resume_matches_clean(
        self, tmp_path, objective, engine_mode
    ):
        initial = random_connected_gnm(9, 12, seed=3)
        clean = _dyn(objective, engine_mode).run(initial)
        assert clean.steps >= 2, "grid must exercise a multi-move run"

        path = tmp_path / "slot.ckpt"
        killer = _KillAfter(path, kills_after=2)
        with pytest.raises(_SimulatedKill):
            _dyn(objective, engine_mode).run(
                initial, checkpoint=killer, checkpoint_every=1
            )
        assert path.exists(), "the snapshot must survive its owner"

        resumed = _dyn(objective, engine_mode).run(
            initial, checkpoint=path, checkpoint_every=1
        )
        assert resumed == clean
        assert resumed.moves == clean.moves
        assert resumed.social_cost_trace == clean.social_cost_trace
        assert resumed.diameter_trace == clean.diameter_trace
        assert resumed.activations == clean.activations
        assert not path.exists(), "a finished run clears its slot"

    def test_kill_at_first_snapshot_then_resume(
        self, tmp_path, objective, engine_mode
    ):
        initial = random_tree(10, seed=5)
        clean = _dyn(objective, engine_mode).run(initial)
        killer = _KillAfter(tmp_path / "slot.ckpt", kills_after=1)
        with pytest.raises(_SimulatedKill):
            _dyn(objective, engine_mode).run(
                initial, checkpoint=killer, checkpoint_every=1
            )
        resumed = _dyn(objective, engine_mode).run(
            initial, checkpoint=tmp_path / "slot.ckpt", checkpoint_every=1
        )
        assert resumed == clean


class TestEngineModeSplice:
    def test_incremental_and_batched_share_checkpoints(self, tmp_path):
        # The two engine-backed modes are bit-identical by contract, so a
        # snapshot from one resumes under the other.
        initial = random_connected_gnm(9, 12, seed=3)
        clean = _dyn("sum", "incremental").run(initial)
        killer = _KillAfter(tmp_path / "slot.ckpt", kills_after=2)
        with pytest.raises(_SimulatedKill):
            _dyn("sum", "incremental").run(
                initial, checkpoint=killer, checkpoint_every=1
            )
        resumed = _dyn("sum", "batched").run(
            initial, checkpoint=tmp_path / "slot.ckpt", checkpoint_every=1
        )
        assert resumed == clean

    def test_oracle_checkpoints_refuse_engine_resume(self, tmp_path):
        # Oracle activation accounting differs; splicing would lie.
        initial = random_connected_gnm(9, 12, seed=3)
        killer = _KillAfter(tmp_path / "slot.ckpt", kills_after=1)
        with pytest.raises(_SimulatedKill):
            _dyn("sum", "oracle").run(
                initial, checkpoint=killer, checkpoint_every=1
            )
        with pytest.raises(StoreIntegrityError):
            _dyn("sum", "incremental").run(
                initial, checkpoint=tmp_path / "slot.ckpt", checkpoint_every=1
            )


class TestDeadlinePreemption:
    def test_expired_deadline_checkpoints_and_yields(self, tmp_path):
        initial = random_connected_gnm(9, 12, seed=3)
        clean = _dyn("sum", "incremental").run(initial)
        path = tmp_path / "slot.ckpt"
        with pytest.raises(DeadlineExceeded):
            # Monotonic instant 0.0 is always in the past: the run must
            # snapshot at the first move boundary and yield, not die dry.
            _dyn("sum", "incremental").run(
                initial, checkpoint=path, deadline=0.0
            )
        assert path.exists()
        resumed = _dyn("sum", "incremental").run(initial, checkpoint=path)
        assert resumed == clean

    def test_expired_deadline_without_store_still_typed(self):
        initial = random_connected_gnm(9, 12, seed=3)
        with pytest.raises(DeadlineExceeded):
            _dyn("sum", "incremental").run(initial, deadline=0.0)


class TestCheckpointConfiguration:
    def test_cadence_without_store_rejected(self):
        with pytest.raises(ConfigurationError):
            SwapDynamics().run(random_tree(6, seed=0), checkpoint_every=5)

    def test_nonpositive_cadence_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SwapDynamics().run(
                random_tree(6, seed=0),
                checkpoint=tmp_path / "s.ckpt",
                checkpoint_every=0,
            )

    def test_different_objective_refuses_foreign_snapshot(self, tmp_path):
        initial = random_tree(10, seed=5)
        killer = _KillAfter(tmp_path / "slot.ckpt", kills_after=1)
        with pytest.raises(_SimulatedKill):
            _dyn("sum", "incremental").run(
                initial, checkpoint=killer, checkpoint_every=1
            )
        with pytest.raises(StoreIntegrityError):
            _dyn("max", "incremental").run(
                initial, checkpoint=tmp_path / "slot.ckpt", checkpoint_every=1
            )

    def test_corrupt_snapshot_restarts_clean(self, tmp_path):
        initial = random_tree(10, seed=5)
        clean = _dyn("sum", "incremental").run(initial)
        killer = _KillAfter(tmp_path / "slot.ckpt", kills_after=1)
        with pytest.raises(_SimulatedKill):
            _dyn("sum", "incremental").run(
                initial, checkpoint=killer, checkpoint_every=1
            )
        path = tmp_path / "slot.ckpt"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        resumed = _dyn("sum", "incremental").run(
            initial, checkpoint=path, checkpoint_every=1
        )
        assert resumed == clean  # quarantined + restarted from scratch
        assert list(tmp_path.glob("*.quarantined.*"))
