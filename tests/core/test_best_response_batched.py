"""Batched best-response kernel: bit-identity, bounds, and hot-path costs.

The ISSUE-5 exactness contract: ``best_swap(mode="batched")`` — the
bound-then-verify per-vertex kernel — must agree *exactly* (swap, costs,
tie-breaking, neutral-deletion behaviour) with ``mode="repair"``, the
engine closure path, and the seed ``mode="oracle"`` across the 216-graph
battery and all four cost-model families; :func:`certify_at_rest` must
certify a graph move-free exactly when every vertex's best response is a
no-op.  The satellites ride along: an already-lifted ``base_dm`` must not
be copied per activation, and ``first_improving_swap`` must skip the
legality mask for unconstrained models without touching the rng stream.
"""

import math

import numpy as np
import pytest

from repro.core import DistanceEngine, SwapDynamics, best_swap, ensure_lifted
from repro.core import first_improving_swap
from repro.core.batched import best_swap_scan, certify_at_rest
from repro.core.costmodel import SumCost, resolve_cost_model
from repro.core.costs import lift_distances
from repro.graphs import (
    CSRGraph,
    distance_matrix,
    random_connected_gnm,
    random_tree,
    star_graph,
)

from ..conftest import graph_battery

BATTERY = graph_battery()

MODELS = ["sum", "max", "interest-sum:k=3,seed=2", "budget-sum:cap=3"]


def _responses_equal(a, b) -> bool:
    return (
        a.swap == b.swap
        and a.before == b.before
        and a.after == b.after
        and a.is_deletion == b.is_deletion
    )


class TestKernelOracle:
    """mode="batched" vs repair / engine / oracle on the battery."""

    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 3))
    @pytest.mark.parametrize("spec", MODELS)
    def test_batched_equals_repair_every_vertex(self, idx, spec):
        g = BATTERY[idx]
        dm = lift_distances(distance_matrix(g))
        for v in range(g.n):
            repair = best_swap(g, v, spec, base_dm=dm)
            batched = best_swap(g, v, spec, mode="batched", base_dm=dm)
            assert _responses_equal(repair, batched), (idx, spec, v)

    @pytest.mark.parametrize("idx", range(1, len(BATTERY), 11))
    @pytest.mark.parametrize("spec", ["sum", "max"])
    def test_batched_equals_rebuild_oracle(self, idx, spec):
        g = BATTERY[idx]
        dm = lift_distances(distance_matrix(g))
        for v in range(g.n):
            oracle = best_swap(g, v, spec, mode="oracle")
            batched = best_swap(g, v, spec, mode="batched", base_dm=dm)
            assert _responses_equal(oracle, batched), (idx, spec, v)

    @pytest.mark.parametrize("idx", range(2, len(BATTERY), 13))
    def test_engine_batched_mode_matches_engine_incremental(self, idx):
        g = BATTERY[idx]
        engine = DistanceEngine(g)
        for spec in MODELS:
            for v in range(g.n):
                a = engine.best_swap(v, spec)
                b = engine.best_swap(v, spec, mode="batched")
                assert _responses_equal(a, b), (idx, spec, v)

    def test_engine_scratch_survives_swaps(self):
        # The cached dm+1 / workspace must follow apply_swap, not go stale.
        g = random_connected_gnm(12, 20, seed=7)
        engine = DistanceEngine(g)
        for _ in range(6):
            moved = False
            for v in range(engine.n):
                br = engine.best_swap(v, "sum", mode="batched")
                oracle = best_swap(engine.graph, v, "sum", mode="oracle")
                assert _responses_equal(br, oracle), v
                if br.swap is not None and not moved:
                    engine.apply_swap(br.swap)
                    moved = True
            if not moved:
                break

    def test_unknown_engine_mode_rejected(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            DistanceEngine(star_graph(5)).best_swap(0, "sum", mode="psychic")


class TestCertifyAtRest:
    @pytest.mark.parametrize("idx", range(0, len(BATTERY), 7))
    @pytest.mark.parametrize("spec", MODELS)
    def test_matches_per_vertex_quiescence(self, idx, spec):
        g = BATTERY[idx]
        if g.n < 2:
            return
        dm = lift_distances(distance_matrix(g))
        quiet = all(
            best_swap(g, v, spec, base_dm=dm).swap is None for v in range(g.n)
        )
        assert certify_at_rest(g, dm, spec) == quiet, (idx, spec)

    def test_star_is_at_rest_for_sum(self):
        g = star_graph(12)
        dm = lift_distances(distance_matrix(g))
        assert certify_at_rest(g, dm, "sum")

    def test_neutral_deletion_breaks_max_rest(self):
        # A chorded cycle: the chord is a cost-neutral deletion for its
        # endpoints under max, which best_swap takes — not at rest.
        g = CSRGraph(6, [(i, (i + 1) % 6) for i in range(6)] + [(0, 2)])
        dm = lift_distances(distance_matrix(g))
        assert not certify_at_rest(g, dm, "max")
        assert certify_at_rest(g, dm, "sum") == all(
            best_swap(g, v, "sum", base_dm=dm).swap is None
            for v in range(g.n)
        )


class TestLiftedInputNotCopied:
    """Satellite: an already-lifted base_dm skips the n×n lifting copy."""

    def _count_lifts(self, monkeypatch):
        from repro.core import costs

        calls = {"n": 0}
        real = lift_distances

        def counting(dm):
            calls["n"] += 1
            return real(dm)

        monkeypatch.setattr(costs, "lift_distances", counting)
        return calls

    def test_ensure_lifted_aliases_lifted_input(self):
        dm = lift_distances(distance_matrix(random_tree(9, seed=1)))
        assert ensure_lifted(dm) is dm
        raw = distance_matrix(random_tree(9, seed=1))
        out = ensure_lifted(raw)
        assert out is not raw and out.dtype == np.int64

    def test_best_swap_skips_copy_for_lifted_base(self, monkeypatch):
        g = random_connected_gnm(10, 16, seed=3)
        lifted = lift_distances(distance_matrix(g))
        calls = self._count_lifts(monkeypatch)
        for mode in ("repair", "batched"):
            for v in range(g.n):
                best_swap(g, v, "sum", mode=mode, base_dm=lifted)
        assert calls["n"] == 0, "lifted base_dm was re-lifted (n×n copy)"

    def test_best_swap_lifts_raw_base_once_per_call(self, monkeypatch):
        g = random_connected_gnm(10, 16, seed=3)
        raw = distance_matrix(g)
        calls = self._count_lifts(monkeypatch)
        best_swap(g, 0, "sum", base_dm=raw)
        assert calls["n"] == 1


class TestFirstImprovingMaskShortCircuit:
    """Satellite: no all-True mask for unconstrained models, rng aligned."""

    class _MaskedSum(SumCost):
        """Sum cost that *materializes* the all-True mask explicitly."""

        def target_mask(self, graph, v, w):
            return np.ones(graph.n, dtype=bool)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_none_mask_path_matches_explicit_all_true(self, seed):
        g = random_connected_gnm(11, 18, seed=seed)
        masked = self._MaskedSum()
        for v in range(g.n):
            plain = first_improving_swap(g, v, "sum", seed=seed)
            explicit = first_improving_swap(g, v, masked, seed=seed)
            assert _responses_equal(plain, explicit), (seed, v)

    def test_budget_mask_still_enforced(self):
        g = random_connected_gnm(10, 16, seed=5)
        model = resolve_cost_model("budget-sum:cap=2", g.n)
        degrees = np.diff(g.indptr)
        for v in range(g.n):
            br = first_improving_swap(g, v, model, seed=9)
            if br.swap is None or br.is_deletion:
                continue
            # A non-deletion add-target must be below the cap.
            assert degrees[br.swap.add] < 2 or br.swap.add in set(
                int(x) for x in g.neighbors(v)
            )


class TestBoundSoundness:
    """The level-0 vertex bound must never exceed any exact post-swap cost."""

    @pytest.mark.parametrize("seed", [0, 4, 8])
    @pytest.mark.parametrize("spec", MODELS)
    def test_level0_bound_below_exact(self, seed, spec):
        g = random_connected_gnm(12, 20, seed=seed)
        lifted = lift_distances(distance_matrix(g))
        model = resolve_cost_model(spec, g.n)
        for v in range(0, g.n, 3):
            level0 = model.candidate_costs(
                v, np.minimum(lifted[v][None, :], lifted + 1)
            )
            level0[v] = math.inf
            for w in sorted(int(x) for x in g.neighbors(v)):
                from repro.core.swap_eval import (
                    all_swap_costs_for_drop,
                    removal_distance_matrix,
                )

                exact = all_swap_costs_for_drop(
                    g, v, w, model,
                    removal_distance_matrix(g, (v, w), mode="rebuild"),
                )
                finite = exact < math.inf
                assert (level0[finite] <= exact[finite]).all(), (seed, v, w)
