"""Fleet-level checkpoint wiring (DESIGN.md §13): declaration, task
compilation, deadline preemption that quarantines with progress, and the
resume that heals a preempted stream to clean-run bytes."""

import time

import pytest

from repro.core.trajcensus import run_trajectory_census, trajectory_experiment
from repro.errors import ConfigurationError, DeadlineExceeded
from repro.io.checkpoint import peek_checkpoint
from repro.io.jsonl_store import FleetFailure, summarize_stream
from repro.parallel import shutdown_shared_pools


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    shutdown_shared_pools()


def _experiment(**overrides):
    kwargs = dict(
        n_values=[8], families=("tree",), replicates=2,
        root_seed=3, max_steps=2000,
    )
    kwargs.update(overrides)
    return trajectory_experiment(**kwargs)


class TestDeclaration:
    def test_trajectory_experiment_supports_checkpoints(self):
        assert _experiment().supports_checkpoints

    def test_compile_without_dir_leaves_slots_unarmed(self):
        exp = _experiment()
        for task in exp.compile_tasks():
            assert exp.task_checkpoint(task) is None

    def test_compile_with_dir_assigns_stable_slot_paths(self, tmp_path):
        exp = _experiment()
        tasks = exp.compile_tasks(
            checkpoint_dir=tmp_path, checkpoint_every=25
        )
        paths = [exp.task_checkpoint(t) for t in tasks]
        assert paths == [
            str(tmp_path / f"slot-{i:05d}.ckpt") for i in range(len(tasks))
        ]

    def test_half_declared_checkpoint_fields_rejected(self):
        from repro.experiments import Experiment

        with pytest.raises(ConfigurationError, match="checkpoint"):
            Experiment(
                name="half",
                point_fn=lambda task: {"seed": task[0]},
                grid={},
                task_fields=("seed", "checkpoint_path"),
                coord_fields=("seed",),
                replicates=1,
                root_seed=0,
                config={},
            )


class TestRunFleetValidation:
    def test_checkpoint_every_requires_dir(self, tmp_path):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            run_trajectory_census(
                [8], families=("tree",), replicates=1,
                jsonl_path=tmp_path / "s.jsonl", checkpoint_every=5,
            )

    def test_checkpoint_dir_requires_capable_experiment(self, tmp_path):
        from repro.experiments import run_fleet
        from tests.experiments.test_experiment import make_experiment

        with pytest.raises(ConfigurationError, match="checkpoint"):
            run_fleet(
                make_experiment(),
                jsonl_path=tmp_path / "s.jsonl",
                checkpoint_dir=tmp_path / "ckpt",
            )


class TestDeadlinePreemption:
    def test_expired_deadline_preempts_before_any_task(self, tmp_path):
        kw = dict(
            n_values=[10], families=("tree",), replicates=2,
            root_seed=5, max_steps=2000, workers=1,
        )
        clean = tmp_path / "clean.jsonl"
        run_trajectory_census(jsonl_path=clean, **kw)

        smoke = tmp_path / "smoke.jsonl"
        with pytest.raises(DeadlineExceeded):
            run_trajectory_census(
                jsonl_path=smoke, checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every=1, deadline=time.monotonic() - 1.0, **kw,
            )
        # Between-task expiry: typed raise, nothing quarantined, and the
        # (empty) streamed prefix resumes to clean bytes.
        assert summarize_stream(smoke).failures == []
        run_trajectory_census(
            jsonl_path=smoke, checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=1, resume=True, retry_failed=True, **kw,
        )
        assert smoke.read_bytes() == clean.read_bytes()

    def test_mid_task_yield_quarantines_with_checkpoint(self, tmp_path):
        # One ~0.3s task against a 0.05s budget: the deadline must land
        # mid-run, so the task checkpoint-and-yields (DESIGN.md §13)
        # rather than being retried past the budget.
        kw = dict(
            n_values=[32], families=("sparse",), replicates=1,
            root_seed=5, max_steps=4000, workers=1,
        )
        clean = tmp_path / "clean.jsonl"
        run_trajectory_census(jsonl_path=clean, **kw)

        smoke = tmp_path / "smoke.jsonl"
        ckpt = tmp_path / "ckpt"
        # The sole task yields mid-run and is quarantined; with no later
        # task left, the map finishes normally instead of raising (a
        # multi-task fleet would raise at the next boundary).
        run_trajectory_census(
            jsonl_path=smoke, checkpoint_dir=ckpt, checkpoint_every=1,
            deadline=time.monotonic() + 0.05, **kw,
        )
        failures = summarize_stream(smoke).failures
        assert len(failures) == 1
        (failure,) = failures
        assert "DeadlineExceeded" in failure.error
        # The quarantine record carries the slot's checkpoint progress,
        # and the file actually holds a resumable snapshot.
        assert failure.checkpoint is not None
        assert peek_checkpoint(failure.checkpoint["path"]) is not None

        healed = run_trajectory_census(
            jsonl_path=smoke, checkpoint_dir=ckpt, checkpoint_every=1,
            resume=True, retry_failed=True, **kw,
        )
        assert not any(isinstance(r, FleetFailure) for r in healed)
        assert smoke.read_bytes() == clean.read_bytes()
        assert sorted(ckpt.glob("*.ckpt")) == []
