"""Golden-file bit-identity suite for the experiment layer (ISSUE 9).

The fixtures under ``golden/`` were streamed by the pre-refactor fleets
(``tests/experiments/make_golden.py`` regenerates them — deliberately,
never casually: a diff is a compatibility break).  Every registered
experiment must reproduce its fixture **byte-for-byte** in three modes —
a fresh fleet, a mid-fleet resume from a truncated prefix, and a
``retry_failed`` resume over a quarantined slot — at workers=1 and
workers=2.  Lint rule R9 requires every ``register_experiment`` name to
be pinned here, so a new experiment cannot ship without its bytes.
"""

import json
from pathlib import Path

import pytest

from repro.core.census import census_experiment
from repro.core.trajcensus import trajectory_experiment
from repro.experiments import run_fleet
from repro.experiments.registry import experiment_names, get_experiment
from repro.io.jsonl_store import FleetFailure

GOLDEN = Path(__file__).parent / "golden"

#: name -> (fixture, builder matching make_golden.py's pinned grid).
CASES = {
    "census": ("census.jsonl", lambda: census_experiment(
        [8, 10], families=("tree", "sparse"), replicates=2, root_seed=3,
    )),
    "trajectory": ("trajectory.jsonl", lambda: trajectory_experiment(
        [10], families=("tree", "sparse"),
        objectives=("sum", "interest-sum:k=3,seed=0"),
        schedules=("round_robin",), responders=("best",),
        replicates=2, max_steps=2000, root_seed=5,
    )),
    "bench-census-scaling": ("bench_census.jsonl", lambda: get_experiment(
        "bench-census-scaling").build(n=[24])),
    "bench-trajectory-scaling": (
        "bench_trajectory.jsonl",
        lambda: get_experiment("bench-trajectory-scaling").build(n=[12]),
    ),
}

NAMES = sorted(CASES)
WORKERS = [1, 2]


def test_every_registered_experiment_is_pinned_here():
    # R9's runtime twin: registering an experiment without extending this
    # suite fails loudly in both lint and tests.
    assert sorted(experiment_names()) == NAMES


@pytest.mark.parametrize("name", NAMES)
def test_builder_name_matches_registry(name):
    assert CASES[name][1]().name == name


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("name", NAMES)
def test_fresh_fleet_reproduces_golden_bytes(name, workers, tmp_path):
    fixture, build = CASES[name]
    out = tmp_path / fixture
    run_fleet(build(), workers=workers, jsonl_path=out)
    assert out.read_bytes() == (GOLDEN / fixture).read_bytes()


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("name", NAMES)
def test_mid_fleet_resume_reproduces_golden_bytes(name, workers, tmp_path):
    fixture, build = CASES[name]
    golden = (GOLDEN / fixture).read_text()
    lines = golden.splitlines(keepends=True)
    # Header + half the records: a fleet killed mid-stream on a record
    # boundary (the torn-tail case is pinned in the store's own tests).
    cut = 1 + (len(lines) - 1) // 2
    out = tmp_path / fixture
    out.write_text("".join(lines[:cut]))
    run_fleet(build(), workers=workers, jsonl_path=out, resume=True)
    assert out.read_bytes() == (GOLDEN / fixture).read_bytes()


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("name", NAMES)
def test_retry_failed_resume_reproduces_golden_bytes(
    name, workers, tmp_path
):
    fixture, build = CASES[name]
    experiment = build()
    golden = (GOLDEN / fixture).read_text()
    lines = golden.splitlines(keepends=True)
    # Quarantine the second slot: its record line becomes a fleet_failure
    # carrying the slot's grid coordinates, as a crashed fleet writes it.
    failure = FleetFailure(
        coords=experiment.task_coords(experiment.compile_tasks()[1]),
        error="InjectedFault('injected raise at task 1')",
        attempts=3,
    )
    lines[2] = json.dumps(failure.encode()) + "\n"
    out = tmp_path / fixture
    out.write_text("".join(lines))
    records = run_fleet(
        experiment, workers=workers, jsonl_path=out,
        resume=True, retry_failed=True,
    )
    assert not any(isinstance(r, FleetFailure) for r in records)
    assert out.read_bytes() == (GOLDEN / fixture).read_bytes()


def test_quarantined_slot_survives_resume_without_retry(tmp_path):
    # Without retry_failed the quarantine line must stay in place (and the
    # stream must still validate) rather than being silently re-run.
    fixture, build = CASES["census"]
    experiment = build()
    lines = (GOLDEN / fixture).read_text().splitlines(keepends=True)
    failure = FleetFailure(
        coords=experiment.task_coords(experiment.compile_tasks()[1]),
        error="InjectedFault('injected raise at task 1')",
        attempts=3,
    )
    lines[2] = json.dumps(failure.encode()) + "\n"
    out = tmp_path / fixture
    out.write_text("".join(lines))
    records = run_fleet(experiment, jsonl_path=out, resume=True)
    assert records[1] == failure
    assert out.read_text() == "".join(lines)


def test_fixtures_exist_and_are_committed():
    for fixture, _ in CASES.values():
        assert (GOLDEN / fixture).exists(), fixture


def test_golden_dir_holds_no_strays():
    # Every fixture is claimed by a case; a stray file means an experiment
    # was deleted without its fixture (or a tmp artifact leaked in).
    committed = {p.name for p in GOLDEN.glob("*.jsonl")}
    assert committed == {fixture for fixture, _ in CASES.values()}
