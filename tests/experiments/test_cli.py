"""End-to-end tests for ``repro experiment list/run/resume/status``."""

import json

import pytest

from repro.cli import main
from repro.io.jsonl_store import FleetFailure, summarize_stream

TINY = ["--n", "8", "--families", "tree", "--replicates", "2",
        "--max-steps", "2000", "--root-seed", "3"]


def run_tiny(out, *extra):
    return main(["experiment", "run", "census", *TINY,
                 "--workers", "1", *extra, "--out", str(out)])


class TestList:
    def test_lists_every_registered_experiment(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("census", "trajectory", "bench-census-scaling",
                     "bench-trajectory-scaling"):
            assert name in out


class TestRun:
    def test_run_streams_and_reports(self, tmp_path, capsys):
        out = tmp_path / "census.jsonl"
        assert run_tiny(out) == 0
        text = capsys.readouterr().out
        assert "running 2 task(s)" in text
        assert "done in" in text
        summary = summarize_stream(out)
        assert summary.results == 2
        assert summary.header["census_config"] is not None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "run", "nope"])

    def test_run_resume_flag_continues(self, tmp_path, capsys):
        out = tmp_path / "census.jsonl"
        assert run_tiny(out) == 0
        full = out.read_bytes()
        lines = out.read_text().splitlines(keepends=True)
        out.write_text("".join(lines[:2]))
        capsys.readouterr()
        assert run_tiny(out, "--resume") == 0
        assert "resuming" in capsys.readouterr().out
        assert out.read_bytes() == full


class TestStatus:
    def test_missing_stream_reports_not_started(self, tmp_path, capsys):
        code = main(["experiment", "status", "census",
                     "--out", str(tmp_path / "none.jsonl")])
        assert code == 1
        assert "not started" in capsys.readouterr().out

    def test_complete_stream_reports_complete(self, tmp_path, capsys):
        out = tmp_path / "census.jsonl"
        run_tiny(out)
        capsys.readouterr()
        assert main(["experiment", "status", "census",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "progress: 2/2 slots (2 results, 0 quarantined)" in text
        assert "complete" in text

    def test_partial_stream_prints_resume_command(self, tmp_path, capsys):
        out = tmp_path / "census.jsonl"
        run_tiny(out)
        lines = out.read_text().splitlines(keepends=True)
        out.write_text("".join(lines[:2]))
        capsys.readouterr()
        assert main(["experiment", "status", "census",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "progress: 1/2 slots" in text
        assert (f"python -m repro.cli experiment resume census "
                f"--n 8 --families tree --replicates 2") in text
        assert "--retry-failed" not in text

    def test_quarantined_slot_surfaced_with_retry_command(
        self, tmp_path, capsys
    ):
        out = tmp_path / "census.jsonl"
        run_tiny(out)
        lines = out.read_text().splitlines(keepends=True)
        record = json.loads(lines[1])
        failure = FleetFailure(
            coords={"n": record["n"], "family": record["family"],
                    "seed": record["seed"], "objective": "sum"},
            error="InjectedFault('boom')",
            attempts=3,
        )
        lines[1] = json.dumps(failure.encode()) + "\n"
        out.write_text("".join(lines))
        capsys.readouterr()
        assert main(["experiment", "status", "census",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "1 quarantined" in text
        assert "quarantined slots:" in text
        assert "InjectedFault('boom')" in text
        assert "--retry-failed" in text
        assert "experiment resume census" in text

    def test_foreign_stream_rejected(self, tmp_path, capsys):
        out = tmp_path / "other.jsonl"
        out.write_text(json.dumps({"other_config": 1}) + "\n")
        assert main(["experiment", "status", "census",
                     "--out", str(out)]) == 1
        assert "not a census stream" in capsys.readouterr().out


class TestResumeVerb:
    def test_resume_retry_failed_clears_quarantine(self, tmp_path, capsys):
        from repro.core.census import census_experiment

        out = tmp_path / "census.jsonl"
        run_tiny(out)
        full = out.read_bytes()
        lines = out.read_text().splitlines(keepends=True)
        exp = census_experiment(
            [8], families=("tree",), replicates=2,
            root_seed=3, max_steps=2000,
        )
        failure = FleetFailure(
            coords=exp.task_coords(exp.compile_tasks()[0]),
            error="InjectedFault('boom')",
            attempts=3,
        )
        lines[1] = json.dumps(failure.encode()) + "\n"
        out.write_text("".join(lines))
        capsys.readouterr()
        assert main(["experiment", "resume", "census", *TINY,
                     "--workers", "1", "--retry-failed",
                     "--out", str(out)]) == 0
        assert out.read_bytes() == full
        assert summarize_stream(out).failures == []


class TestDeprecatedShims:
    @pytest.mark.parametrize("script, name", [
        ("census_fleet.py", "census"),
        ("trajectory_fleet.py", "trajectory"),
    ])
    def test_shim_forwards_to_experiment_cli(self, script, name, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            f"shim_{name}",
            Path(__file__).parents[2] / "scripts" / script,
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        with pytest.raises(SystemExit):
            mod.main(["--help"])
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "--retry-failed" in captured.out


class TestStatusJson:
    def _quarantine_slot_1(self, out, checkpoint=None):
        lines = out.read_text().splitlines(keepends=True)
        record = json.loads(lines[1])
        failure = FleetFailure(
            coords={"n": record["n"], "family": record["family"],
                    "seed": record["seed"], "objective": "sum"},
            error="DeadlineExceeded('budget spent')",
            attempts=1,
            checkpoint=checkpoint,
        )
        lines[1] = json.dumps(failure.encode()) + "\n"
        out.write_text("".join(lines))
        return failure

    def test_complete_stream_emits_machine_readable_report(
        self, tmp_path, capsys
    ):
        out = tmp_path / "census.jsonl"
        run_tiny(out)
        capsys.readouterr()
        assert main(["experiment", "status", "census",
                     "--out", str(out), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report == {
            "experiment": "census",
            "stream": str(out),
            "total": 2,
            "completed": 2,
            "results": 2,
            "quarantined": 0,
            "torn_tail": False,
            "complete": True,
            "failures": [],
        }

    def test_quarantined_slot_reports_live_checkpoint_progress(
        self, tmp_path, capsys
    ):
        from repro.io.checkpoint import CheckpointStore

        out = tmp_path / "census.jsonl"
        run_tiny(out)
        ckpt_path = tmp_path / "slot-00001.ckpt"
        CheckpointStore(ckpt_path).save(
            {"state": "opaque"}, {"v": 1},
            meta={"steps": 9, "activations": 4},
        )
        # The recorded block is stale (steps=2); status must re-peek the
        # live file and report steps=9.
        self._quarantine_slot_1(
            out, checkpoint={"path": str(ckpt_path), "steps": 2}
        )
        capsys.readouterr()
        assert main(["experiment", "status", "census",
                     "--out", str(out), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["quarantined"] == 1
        assert report["complete"] is False
        (slot,) = report["failures"]
        assert slot["attempts"] == 1
        assert "DeadlineExceeded" in slot["error"]
        assert slot["checkpoint"] == {
            "path": str(ckpt_path), "steps": 9, "activations": 4,
        }

    def test_vanished_checkpoint_falls_back_to_recorded_block(
        self, tmp_path, capsys
    ):
        out = tmp_path / "census.jsonl"
        run_tiny(out)
        gone = tmp_path / "gone.ckpt"
        self._quarantine_slot_1(
            out, checkpoint={"path": str(gone), "steps": 2}
        )
        capsys.readouterr()
        assert main(["experiment", "status", "census",
                     "--out", str(out), "--json"]) == 0
        (slot,) = json.loads(capsys.readouterr().out)["failures"]
        assert slot["checkpoint"] == {"path": str(gone), "steps": 2}

    def test_human_status_prints_checkpoint_line(self, tmp_path, capsys):
        from repro.io.checkpoint import CheckpointStore

        out = tmp_path / "census.jsonl"
        run_tiny(out)
        ckpt_path = tmp_path / "slot-00001.ckpt"
        CheckpointStore(ckpt_path).save(
            {"state": "opaque"}, {"v": 1}, meta={"steps": 9},
        )
        self._quarantine_slot_1(out, checkpoint={"path": str(ckpt_path)})
        capsys.readouterr()
        assert main(["experiment", "status", "census",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "checkpointed: steps=9" in text
        assert str(ckpt_path) in text

    def test_missing_stream_error_is_json_too(self, tmp_path, capsys):
        assert main(["experiment", "status", "census",
                     "--out", str(tmp_path / "none.jsonl"),
                     "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["experiment"] == "census"
        assert "not started" in report["error"]
