"""Unit tests for the Experiment dataclass and run_fleet (DESIGN.md §12)."""

import json

import pytest

from repro.errors import ConfigurationError, StoreIntegrityError
from repro.experiments import Experiment, run_fleet
from repro.io.jsonl_store import FleetFailure
from repro.rng import derive_seed


def eval_task(task):
    n, mode, seed, scale = task
    return {"n": n, "mode": mode, "seed": seed, "value": n * scale}


def make_experiment(**overrides):
    kwargs = dict(
        name="demo",
        point_fn=eval_task,
        grid={"n": [2, 3], "mode": ["a", "b"]},
        task_fields=("n", "mode", "seed", "scale"),
        coord_fields=("n", "mode", "seed"),
        replicates=2,
        root_seed=9,
        fixed={"scale": 10},
        int_coords=("n", "seed"),
        config={"scale": 10, "root_seed": 9},
    )
    kwargs.update(overrides)
    return Experiment(**kwargs)


class TestValidation:
    def test_bad_seed_scheme(self):
        with pytest.raises(ConfigurationError, match="seed_scheme"):
            make_experiment(seed_scheme="zigzag")

    def test_fixed_shadowing_grid(self):
        with pytest.raises(ConfigurationError, match="shadow grid"):
            make_experiment(fixed={"scale": 10, "n": 5})

    def test_unresolved_task_field(self):
        with pytest.raises(ConfigurationError, match="'ghost'"):
            make_experiment(task_fields=("n", "mode", "seed", "ghost"))

    def test_coord_field_must_be_task_field(self):
        with pytest.raises(ConfigurationError, match="not task fields"):
            make_experiment(coord_fields=("n", "elsewhere"))

    def test_order_validated_through_sweep(self):
        exp = make_experiment(order=("mode", "mode"))
        with pytest.raises(ConfigurationError, match="re-declared"):
            exp.compile_tasks()


class TestCompileTasks:
    def test_stream_order_and_fixed_resolution(self):
        tasks = make_experiment().compile_tasks()
        assert len(tasks) == 8
        assert [t[0] for t in tasks] == [2, 2, 2, 2, 3, 3, 3, 3]
        assert [t[1] for t in tasks] == ["a", "a", "b", "b"] * 2
        assert all(t[3] == 10 for t in tasks)

    def test_flat_seed_scheme_matches_sweep(self):
        exp = make_experiment()
        seeds = [t[2] for t in exp.compile_tasks()]
        assert seeds == [p.seed for p in exp.sweep().points()]

    def test_axes_seed_scheme_derives_from_axis_indices(self):
        exp = make_experiment(seed_scheme="axes")
        seeds = [t[2] for t in exp.compile_tasks()]
        expect = [
            derive_seed(9, i, j, rep)
            for i in range(2) for j in range(2) for rep in range(2)
        ]
        assert seeds == expect

    def test_order_reorders_tasks(self):
        tasks = make_experiment(order=("mode", "n")).compile_tasks()
        assert [t[1] for t in tasks] == ["a"] * 4 + ["b"] * 4

    def test_total_tasks(self):
        assert make_experiment().total_tasks() == 8


class TestCoords:
    def test_coords_follow_coord_field_order(self):
        exp = make_experiment()
        task = exp.compile_tasks()[0]
        coords = exp.task_coords(task)
        assert list(coords) == ["n", "mode", "seed"]
        assert coords["n"] == 2 and coords["mode"] == "a"

    def test_int_coords_coerce_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        exp = make_experiment(grid={"n": [np.int64(2)], "mode": ["a"]})
        coords = exp.task_coords(exp.compile_tasks()[0])
        assert type(coords["n"]) is int

    def test_coord_overrides_win(self):
        exp = make_experiment(coord_overrides={"mode": "canonical"})
        coords = exp.task_coords(exp.compile_tasks()[0])
        assert coords["mode"] == "canonical"


class TestCheckResumed:
    def test_matching_record_passes(self):
        exp = make_experiment()
        coords = {"n": 2, "mode": "a", "seed": 5}
        exp.check_resumed(coords, {"n": 2, "mode": "a", "seed": 5, "x": 1})

    def test_mismatching_record_names_every_coord(self):
        exp = make_experiment()
        with pytest.raises(StoreIntegrityError, match="n=3, mode='a'"):
            exp.check_resumed(
                {"n": 2, "mode": "a", "seed": 5},
                {"n": 3, "mode": "a", "seed": 5},
            )

    def test_quarantine_slot_checked_against_coords(self):
        exp = make_experiment()
        good = FleetFailure(
            coords={"n": 2, "mode": "a", "seed": 5}, error="x", attempts=1
        )
        exp.check_resumed({"n": 2, "mode": "a", "seed": 5}, good)
        with pytest.raises(StoreIntegrityError, match="quarantined slot"):
            exp.check_resumed({"n": 3, "mode": "a", "seed": 5}, good)


class TestStore:
    def test_default_store_writes_experiment_block(self, tmp_path):
        exp = make_experiment()
        path = tmp_path / "demo.jsonl"
        run_fleet(exp, jsonl_path=path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["experiment"] == {
            "name": "demo",
            "order": ["n", "mode"],
            "seed_scheme": "flat",
        }

    def test_store_factory_overrides_default(self, tmp_path):
        sentinel = object()
        calls = []

        def factory(path, durability):
            calls.append((path, durability))
            return sentinel

        exp = make_experiment(store_factory=factory)
        store = exp.make_store(tmp_path / "x.jsonl", "fsync")
        assert calls == [(tmp_path / "x.jsonl", "fsync")]
        assert store is sentinel


class TestRunFleet:
    def test_resume_requires_path(self):
        with pytest.raises(ConfigurationError, match="needs a jsonl_path"):
            run_fleet(make_experiment(), resume=True)

    def test_records_match_tasks_in_order(self):
        exp = make_experiment()
        records = run_fleet(exp)
        assert [r["n"] for r in records] == [t[0] for t in exp.compile_tasks()]
        assert all(r["value"] == r["n"] * 10 for r in records)

    def test_workers_bit_identical(self, tmp_path):
        exp = make_experiment()
        a, b = tmp_path / "w1.jsonl", tmp_path / "w2.jsonl"
        serial = run_fleet(exp, workers=1, jsonl_path=a)
        sharded = run_fleet(exp, workers=2, jsonl_path=b)
        assert serial == sharded
        assert a.read_bytes() == b.read_bytes()

    def test_resume_skips_streamed_prefix(self, tmp_path):
        exp = make_experiment()
        path = tmp_path / "demo.jsonl"
        full = run_fleet(exp, jsonl_path=path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:4]))
        resumed = run_fleet(exp, jsonl_path=path, resume=True)
        assert resumed == full
        assert path.read_text() == "".join(lines)

    def test_resume_refuses_foreign_records(self, tmp_path):
        exp = make_experiment()
        path = tmp_path / "demo.jsonl"
        run_fleet(exp, jsonl_path=path)
        other = make_experiment(grid={"n": [7, 8], "mode": ["a", "b"]})
        with pytest.raises(StoreIntegrityError, match="resume mismatch"):
            run_fleet(other, jsonl_path=path, resume=True)
