#!/usr/bin/env python
"""Regenerate the golden JSONL fixtures for the bit-identity suite.

The fixtures pin the exact bytes the pre-refactor fleets streamed
(ISSUE 9); the `Experiment`-compiled fleets must reproduce them
byte-for-byte.  Regenerate ONLY when a record schema change is
deliberate — a diff here is a compatibility break, and resuming
pre-change streams will refuse the new header.

Usage: PYTHONPATH=src python tests/experiments/make_golden.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core.census import run_census
from repro.core.trajcensus import run_trajectory_census

GOLDEN = Path(__file__).parent / "golden"

#: The four pinned grids: the two library fleets on small grids, plus the
#: two bench-arm grids of ``bench_checker_scaling.py`` (smoke scale).
CENSUS_GRID = dict(
    n_values=[8, 10], families=("tree", "sparse"), replicates=2, root_seed=3,
)
TRAJECTORY_GRID = dict(
    n_values=[10], families=("tree", "sparse"),
    objectives=("sum", "interest-sum:k=3,seed=0"),
    schedules=("round_robin",), responders=("best",),
    replicates=2, max_steps=2000, root_seed=5,
)
BENCH_CENSUS_GRID = dict(
    n_values=[24], families=("tree", "sparse", "dense"),
    replicates=2, root_seed=7,
)
BENCH_TRAJECTORY_GRID = dict(
    n_values=[12], families=("tree", "sparse"),
    objectives=("sum", "interest-sum:k=3,seed=0"),
    schedules=("round_robin", "random"), responders=("best",),
    replicates=2, root_seed=11, max_steps=4000,
)


def main() -> int:
    GOLDEN.mkdir(parents=True, exist_ok=True)
    run_census(jsonl_path=GOLDEN / "census.jsonl", **CENSUS_GRID)
    run_trajectory_census(
        jsonl_path=GOLDEN / "trajectory.jsonl", **TRAJECTORY_GRID
    )
    run_census(jsonl_path=GOLDEN / "bench_census.jsonl", **BENCH_CENSUS_GRID)
    run_trajectory_census(
        jsonl_path=GOLDEN / "bench_trajectory.jsonl", **BENCH_TRAJECTORY_GRID
    )
    for path in sorted(GOLDEN.glob("*.jsonl")):
        lines = path.read_text().count("\n")
        print(f"{path.name}: {lines} lines, {path.stat().st_size} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
