"""Seeding discipline tests."""

import numpy as np
import pytest

from repro.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        a = make_rng(ss).integers(0, 1000)
        b = make_rng(np.random.SeedSequence(5)).integers(0, 1000)
        assert a == b


class TestSpawn:
    def test_children_independent_of_count_prefix(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        b = [g.integers(0, 10**9) for g in spawn_rngs(3, 8)][:4]
        assert a == b

    def test_children_differ(self):
        values = [int(g.integers(0, 10**12)) for g in spawn_rngs(0, 16)]
        assert len(set(values)) == 16

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_component_sensitivity(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
        assert derive_seed(1, 2) != derive_seed(2, 2)

    def test_range(self):
        for i in range(20):
            s = derive_seed(0, i)
            assert 0 <= s < 2**63
