"""CLI tests."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4-torus" in out
        assert "thm15-cayley" in out

    def test_run_prints_tables(self, capsys):
        assert main(["run", "fig3-diameter3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5" in out
        assert "repaired witness" in out
        assert "completed in" in out

    def test_run_writes_csv(self, tmp_path, capsys):
        assert main(
            ["run", "poa-diameter", "--csv", str(tmp_path)]
        ) == 0
        files = list(tmp_path.glob("poa-diameter--*.csv"))
        assert files
        header = files[0].read_text().splitlines()[0]
        assert "PoA" in header

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
